"""Assemble the 120-case suite (the paper's data-race-test stand-in).

The base generator families provide the structural variety; this module
adds parameterized thread-count/size variants to reach exactly 120 cases
(the paper: "120 different test cases (2-16 Threads)").
"""

from __future__ import annotations

from typing import List

from repro.harness.workload import Workload
from repro.workloads.dr_test import (
    adhoc,
    barriers,
    condvars,
    hard,
    locks,
    queues,
    racy,
    semaphores,
)

SUITE_SIZE = 120


def _extras() -> List[Workload]:
    """Parameterized variants extending the base families."""
    out: List[Workload] = []
    for threads in (3, 6, 12):
        out.append(
            Workload(
                name=f"locks_mutex_counter_t{threads}",
                build=locks._mutex_counter(threads),
                threads=threads,
                category="locks",
                description=f"{threads} threads increment one counter under a mutex",
            )
        )
    for consumers in (2, 5):
        out.append(
            Workload(
                name=f"cv_handoff_c{consumers}",
                build=condvars._signal_wait_handoff(consumers),
                threads=consumers + 1,
                category="condvars",
                description="broadcast handoff with predicate loop",
            )
        )
    out.append(
        Workload(
            name="cv_pipeline_s7",
            build=condvars._staged_pipeline(7),
            threads=7,
            category="condvars",
            description="seven-stage chain gated by a stage counter",
        )
    )
    for threads in (3, 6):
        out.append(
            Workload(
                name=f"barrier_phase_t{threads}",
                build=barriers._phase_sum(threads),
                threads=threads,
                category="barriers",
                description="write-slot / barrier / read-all phases",
            )
        )
    out.append(
        Workload(
            name="barrier_iter_t8_p3",
            build=barriers._iterated_barrier(8, 3),
            threads=8,
            category="barriers",
            description="8-way double-buffered stencil",
        )
    )
    out.append(
        Workload(
            name="sem_mutex_t8",
            build=semaphores._sem_as_mutex(8),
            threads=8,
            category="semaphores",
            description="binary semaphore as mutex, 8 threads",
        )
    )
    out.append(
        Workload(
            name="sem_handoff_t8",
            build=semaphores._sem_handoff(8),
            threads=9,
            category="semaphores",
            description="producer posts 8 tokens after publishing slots",
        )
    )
    out.append(
        Workload(
            name="queue_spsc_i18",
            build=queues._spsc(18),
            threads=2,
            category="queues",
            description="longer SPSC stream through the task queue",
        )
    )
    out.append(
        Workload(
            name="queue_mpmc_2p4c",
            build=queues._mpmc(2, 4, 6),
            threads=6,
            category="queues",
            description="2 producers, 4 consumers",
        )
    )
    out.append(
        Workload(
            name="adhoc_flag_quad",
            build=adhoc._flag_basic(4, data_words=3),
            threads=5,
            category="adhoc",
            description="one producer, four spinning consumers (2-block loops)",
        )
    )
    out.append(
        Workload(
            name="adhoc7_handoff_5w",
            build=adhoc._helper_handoff("adhoc7_handoff_5w", adhoc._HELPER_EFF7, data_words=5),
            threads=2,
            category="adhoc",
            description="five payload words behind a helper-guarded flag",
        )
    )
    out.append(
        Workload(
            name="adhoc7_chain_b",
            build=adhoc._helper_chain("adhoc7_chain_b", adhoc._HELPER_EFF7),
            threads=3,
            category="adhoc",
            description="second three-stage helper chain instance",
        )
    )
    out.append(
        Workload(
            name="racy_counter_t8",
            build=racy._plain_counter(8),
            racy_symbols=frozenset({"COUNTER"}),
            threads=8,
            category="racy_plain",
            description="eight threads on an unprotected counter",
        )
    )
    out.append(
        Workload(
            name="racy_lockmask_mid",
            build=racy._lock_masked("racy_lockmask_mid", delay=100),
            racy_symbols=frozenset({"X"}),
            threads=2,
            category="racy_drd_miss",
            description="lock-masked race, medium delay",
        )
    )
    out.append(
        Workload(
            name="racy_lockmask_deep",
            build=racy._lock_masked("racy_lockmask_deep", delay=200),
            racy_symbols=frozenset({"X"}),
            threads=2,
            category="racy_drd_miss",
            description="TAS-lock-masked race, large delay",
        )
    )
    out.append(
        Workload(
            name="racy_semmask_mid",
            build=racy._sem_masked("racy_semmask_mid", delay=140),
            racy_symbols=frozenset({"X"}),
            threads=2,
            category="racy_both_miss",
            description="sem-token masked race, medium delay",
        )
    )
    return out


def build_suite() -> List[Workload]:
    """The full 120-case suite, deterministic order, unique names."""
    cases: List[Workload] = []
    cases += locks.cases()
    cases += condvars.cases()
    cases += barriers.cases()
    cases += semaphores.cases()
    cases += queues.cases()
    cases += adhoc.cases()
    cases += hard.cases()
    cases += racy.cases()
    cases += _extras()
    names = [c.name for c in cases]
    assert len(names) == len(set(names)), "duplicate workload names"
    assert len(cases) == SUITE_SIZE, f"suite has {len(cases)} cases, want {SUITE_SIZE}"
    return cases
