"""Race-free barrier-phased computations."""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Const, Mov
from repro.harness.workload import Workload
from repro.runtime import BARRIER_SIZE
from repro.workloads.common import counted_loop, finish_main, new_program


def _phase_sum(threads: int):
    """Phase 1: each thread writes its slot; barrier; phase 2: all read all."""

    def build():
        pb = new_program(f"barrier_phase_{threads}")
        pb.global_("B", BARRIER_SIZE)
        pb.global_("VALS", threads)

        w = pb.function("worker", params=("idx",))
        b = w.addr("B")
        base = w.addr("VALS")
        slot = w.add(base, "idx")
        w.store(slot, w.mul(w.add("idx", 1), 10))
        w.call("barrier_wait", [b])
        s = w.reg("s")
        w.emit(Const(s, 0))
        for k in range(threads):
            w.emit(Mov(s, w.add(s, w.load(base, offset=k))))
        w.ret(s)

        mn = pb.function("main")
        bm = mn.addr("B")
        mn.call("barrier_init", [bm, mn.const(threads)])
        tids = [mn.spawn("worker", [mn.const(i)]) for i in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _iterated_barrier(threads: int, phases: int):
    """Repeated barrier inside a loop: classic stencil-style exchange."""

    def build():
        pb = new_program(f"barrier_iter_{threads}_{phases}")
        pb.global_("B", BARRIER_SIZE)
        pb.global_("GRID", threads * 2)

        w = pb.function("worker", params=("idx",))

        def body(fb, i):
            b = fb.addr("B")
            g = fb.addr("GRID")
            # Write my cell in bank (i % 2), reading the other bank.
            bank = fb.mod(i, 2)
            other = fb.sub(1, bank)
            mine = fb.add(fb.mul(bank, threads), "idx")
            theirs = fb.add(fb.mul(other, threads), "idx")
            src = fb.load(fb.add(g, theirs))
            fb.store(fb.add(g, mine), fb.add(src, 1))
            fb.call("barrier_wait", [b])

        counted_loop(w, phases, body)
        w.ret()

        mn = pb.function("main")
        bm = mn.addr("B")
        mn.call("barrier_init", [bm, mn.const(threads)])
        tids = [mn.spawn("worker", [mn.const(i)]) for i in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def cases() -> List[Workload]:
    out: List[Workload] = []
    for threads in (2, 4, 8, 16):
        out.append(
            Workload(
                name=f"barrier_phase_t{threads}",
                build=_phase_sum(threads),
                threads=threads,
                category="barriers",
                description="write-slot / barrier / read-all phases",
            )
        )
    for threads, phases in ((2, 3), (4, 3), (4, 5)):
        out.append(
            Workload(
                name=f"barrier_iter_t{threads}_p{phases}",
                build=_iterated_barrier(threads, phases),
                threads=threads,
                category="barriers",
                description="double-buffered stencil with repeated barrier",
            )
        )
    return out
