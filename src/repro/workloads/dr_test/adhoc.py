"""Race-free ad-hoc synchronization cases — the false-positive battleground.

Every case here is *correctly synchronized*, but only through hand-rolled
spinning read loops (no library primitives protect the data).  Detectors
without spin-loop knowledge report false races on both the data
(apparent races) and the flags (synchronization races).

The cases are grouped by the *effective basic-block size* of their spin
loops, because that is the knob the paper's Table on slide 25 turns:

* ``eff2``/``eff3`` — simple flag loops, caught even by spin(3);
* ``eff5`` — one mid-size case, caught by spin(6) and up;
* ``eff7`` — loops whose condition goes through a padded pure helper
  function ("templates and complex function calls"), caught only by
  spin(7)/spin(8).
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Const, Mov
from repro.harness.workload import Workload
from repro.workloads.common import (
    busy_nops,
    counted_loop,
    emit_user_lock_acquire,
    emit_user_lock_release,
    finish_main,
    make_condition_helper,
    new_program,
    spin_flag_2bb,
    spin_two_flags_3bb,
    spin_with_helper,
)

#: helper sizes giving effective loop sizes 5 and 7 (2 loop blocks + helper)
_HELPER_EFF5 = 3
_HELPER_EFF7 = 5


def _ge_helper(pb, name: str, blocks: int, threshold: int, offset: int = 0) -> str:
    """Pure helper: ``load(flag+offset) >= threshold``, ``blocks`` blocks."""
    assert blocks >= 2
    fb = pb.function(name, params=("flag",))
    v = fb.load("flag", offset=offset)
    acc = fb.mov(v)
    for _ in range(blocks - 2):
        nxt = fb.fresh_label("pad")
        fb.jmp(nxt)
        fb.label(nxt)
        acc = fb.add(acc, 0)
    last = fb.fresh_label("check")
    fb.jmp(last)
    fb.label(last)
    result = fb.ge(acc, threshold)
    fb.ret(result)
    return name


# ---------------------------------------------------------------------------
# Effective size 2 (plus one 3): simple flag loops
# ---------------------------------------------------------------------------


def _flag_basic(consumers: int = 1, data_words: int = 1):
    def build():
        pb = new_program(f"adhoc_flag_{consumers}c")
        pb.global_("FLAG", 1)
        pb.global_("DATA", data_words)

        prod = pb.function("producer")
        d = prod.addr("DATA")
        for k in range(data_words):
            prod.store(d, 10 + k, offset=k)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        spin_flag_2bb(cons, f, expect=1)
        d = cons.addr("DATA")
        s = cons.reg("s")
        cons.emit(Const(s, 0))
        for k in range(data_words):
            cons.emit(Mov(s, cons.add(s, cons.load(d, offset=k))))
        cons.ret(s)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []) for _ in range(consumers)]
        tids.append(mn.spawn("producer", []))
        finish_main(mn, tids)
        return pb.build()

    return build


def _flag_reverse():
    """Spin while the flag reads 1; producer *clears* it."""

    def build():
        pb = new_program("adhoc_flag_reverse")
        pb.global_("BUSY", 1, init=(1,))
        pb.global_("DATA", 1)

        prod = pb.function("producer")
        prod.store_global("DATA", 42)
        prod.store_global("BUSY", 0)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("BUSY")
        spin_flag_2bb(cons, f, expect=0)
        v = cons.load_global("DATA")
        cons.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _handshake():
    """Bidirectional flags: A publishes, B consumes and replies."""

    def build():
        pb = new_program("adhoc_handshake")
        pb.global_("F_AB", 1)
        pb.global_("F_BA", 1)
        pb.global_("X", 1)
        pb.global_("Y", 1)

        a = pb.function("alice")
        a.store_global("X", 5)
        a.store_global("F_AB", 1)
        fba = a.addr("F_BA")
        spin_flag_2bb(a, fba, expect=1)
        v = a.load_global("Y")
        a.ret(v)

        b = pb.function("bob")
        fab = b.addr("F_AB")
        spin_flag_2bb(b, fab, expect=1)
        x = b.load_global("X")
        b.store_global("Y", b.mul(x, 2))
        b.store_global("F_BA", 1)
        b.ret()

        mn = pb.function("main")
        tids = [mn.spawn("alice", []), mn.spawn("bob", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _generation_counter():
    """Consumer spins until a generation counter advances past a target."""

    def build():
        pb = new_program("adhoc_generation")
        pb.global_("GEN", 1)
        pb.global_("DATA", 2)

        prod = pb.function("producer")

        def body(fb, i):
            d = fb.addr("DATA")
            fb.store(d, fb.add(i, 100), offset=0)
            fb.store(d, fb.add(i, 200), offset=1)
            g = fb.addr("GEN")
            fb.store(g, fb.add(fb.load(g), 1))

        counted_loop(prod, 3, body)
        prod.ret()

        cons = pb.function("consumer")
        g = cons.addr("GEN")
        head = "spin_head"
        body = "spin_body"
        cons.jmp(head)
        cons.label(head)
        v = cons.load(g)
        done = cons.ge(v, 3)
        cons.br(done, "after", body)
        cons.label(body)
        cons.yield_()
        cons.jmp(head)
        cons.label("after")
        d = cons.addr("DATA")
        s = cons.add(cons.load(d, offset=0), cons.load(d, offset=1))
        cons.ret(s)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _user_spinlock(threads: int = 2, iters: int = 4):
    """A hand-rolled spin-then-CAS lock (NOT the library one).

    Every acquisition passes through the pure spin loop before attempting
    the CAS, so the runtime phase always sees the release→spin-read
    dependency and recovers mutual-exclusion ordering.
    """

    def build():
        pb = new_program(f"adhoc_userlock_{threads}")
        pb.global_("LK", 1)
        pb.global_("COUNTER", 1)

        w = pb.function("worker")

        def body(fb, i):
            lk = fb.addr("LK")
            emit_user_lock_acquire(fb, lk)
            a = fb.addr("COUNTER")
            fb.store(a, fb.add(fb.load(a), 1))
            emit_user_lock_release(fb, lk)

        counted_loop(w, iters, body)
        w.ret()

        mn = pb.function("main")
        tids = [mn.spawn("worker", []) for _ in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _two_flag_3bb():
    """Exit requires two flags — a 3-block spin loop."""

    def build():
        pb = new_program("adhoc_two_flags")
        pb.global_("FLAGS", 2)
        pb.global_("DATA", 1)

        p1 = pb.function("producer_a")
        p1.store_global("DATA", 11)
        f = p1.addr("FLAGS")
        p1.store(f, 1, offset=0)
        p1.ret()

        p2 = pb.function("producer_b")
        f = p2.addr("FLAGS")
        p2.store(f, 1, offset=1)
        p2.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAGS")
        spin_two_flags_3bb(cons, f, 0, 1)
        v = cons.load_global("DATA")
        cons.ret(v)

        mn = pb.function("main")
        tids = [
            mn.spawn("consumer", []),
            mn.spawn("producer_a", []),
            mn.spawn("producer_b", []),
        ]
        finish_main(mn, tids)
        return pb.build()

    return build


def _split_condition_3bb():
    """Single flag but the condition is computed across two blocks."""

    def build():
        pb = new_program("adhoc_split_cond")
        pb.global_("FLAG", 1)
        pb.global_("DATA", 1)

        prod = pb.function("producer")
        prod.store_global("DATA", 33)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        cons.jmp("h1")
        cons.label("h1")
        v = cons.load(f)
        cons.jmp("h2")
        cons.label("h2")
        p = cons.eq(v, 1)
        cons.br(p, "after", "body")
        cons.label("body")
        cons.yield_()
        cons.jmp("h1")
        cons.label("after")
        d = cons.load_global("DATA")
        cons.ret(d)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


# ---------------------------------------------------------------------------
# Helper-based loops (effective size 5 and 7)
# ---------------------------------------------------------------------------


def _helper_handoff(
    name: str,
    helper_blocks: int,
    consumers: int = 1,
    data_words: int = 2,
    atomic_flag: bool = False,
):
    def build():
        pb = new_program(name)
        pb.global_("FLAG", 1)
        pb.global_("DATA", data_words)
        helper = make_condition_helper(pb, "check_ready", helper_blocks, expect=1)

        prod = pb.function("producer")
        d = prod.addr("DATA")
        for k in range(data_words):
            prod.store(d, 7 * (k + 1), offset=k)
        f = prod.addr("FLAG")
        if atomic_flag:
            prod.atomic_xchg(f, 1)
        else:
            prod.store(f, 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        spin_with_helper(cons, helper, f)
        d = cons.addr("DATA")
        s = cons.reg("s")
        cons.emit(Const(s, 0))
        for k in range(data_words):
            cons.emit(Mov(s, cons.add(s, cons.load(d, offset=k))))
        cons.ret(s)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []) for _ in range(consumers)]
        tids.append(mn.spawn("producer", []))
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_handshake(name: str, helper_blocks: int):
    def build():
        pb = new_program(name)
        pb.global_("F_AB", 1)
        pb.global_("F_BA", 1)
        pb.global_("X", 1)
        pb.global_("Y", 1)
        h_ab = make_condition_helper(pb, "check_ab", helper_blocks, expect=1)
        h_ba = make_condition_helper(pb, "check_ba", helper_blocks, expect=1)

        a = pb.function("alice")
        a.store_global("X", 3)
        a.store_global("F_AB", 1)
        f = a.addr("F_BA")
        spin_with_helper(a, h_ba, f)
        v = a.load_global("Y")
        a.ret(v)

        b = pb.function("bob")
        f = b.addr("F_AB")
        spin_with_helper(b, h_ab, f)
        x = b.load_global("X")
        b.store_global("Y", b.add(x, 100))
        b.store_global("F_BA", 1)
        b.ret()

        mn = pb.function("main")
        tids = [mn.spawn("alice", []), mn.spawn("bob", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_reverse(name: str, helper_blocks: int):
    def build():
        pb = new_program(name)
        pb.global_("BUSY", 1, init=(1,))
        pb.global_("DATA", 1)
        helper = make_condition_helper(pb, "check_idle", helper_blocks, expect=0)

        prod = pb.function("producer")
        prod.store_global("DATA", 55)
        prod.store_global("BUSY", 0)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("BUSY")
        spin_with_helper(cons, helper, f)
        v = cons.load_global("DATA")
        cons.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_barrier(name: str, helper_blocks: int, threads: int = 3):
    """Self-built barrier, following the paper's slide-18 sketch:
    arrivals counted under an (ad-hoc) lock, then a helper-condition spin.

    The lock matters: it chains happens-before between arrivals, so even
    the *last* arriver (whose spin exits on its own counter write) is
    ordered after every earlier thread's pre-barrier work.
    """

    def build():
        pb = new_program(name)
        pb.global_("ARRIVED", 1)
        pb.global_("BLK", 1)
        pb.global_("VALS", threads)
        helper = _ge_helper(pb, "check_all_arrived", helper_blocks, threshold=threads)

        w = pb.function("worker", params=("idx",))
        base = w.addr("VALS")
        w.store(w.add(base, "idx"), w.add("idx", 1))
        blk = w.addr("BLK")
        arr = w.addr("ARRIVED")
        emit_user_lock_acquire(w, blk)
        w.store(arr, w.add(w.load(arr), 1))
        emit_user_lock_release(w, blk)
        spin_with_helper(w, helper, arr)
        s = w.reg("s")
        w.emit(Const(s, 0))
        for k in range(threads):
            w.emit(Mov(s, w.add(s, w.load(base, offset=k))))
        w.ret(s)

        mn = pb.function("main")
        tids = [mn.spawn("worker", [mn.const(i)]) for i in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_ring(name: str, helper_blocks: int, items: int = 4):
    """SPSC ring with a published-tail spin (>= threshold per item)."""

    def build():
        pb = new_program(name)
        pb.global_("TAIL", 1)
        pb.global_("RING", items)
        pb.global_("OUT", 1)
        helpers = [
            _ge_helper(pb, f"check_tail_{i}", helper_blocks, threshold=i + 1)
            for i in range(items)
        ]

        prod = pb.function("producer")
        r = prod.addr("RING")
        t = prod.addr("TAIL")
        for i in range(items):
            prod.store(r, (i + 1) * 3, offset=i)
            prod.store(t, i + 1)
        prod.ret()

        cons = pb.function("consumer")
        t = cons.addr("TAIL")
        r = cons.addr("RING")
        s = cons.reg("s")
        cons.emit(Const(s, 0))
        for i in range(items):
            spin_with_helper(cons, helpers[i], t)
            cons.emit(Mov(s, cons.add(s, cons.load(r, offset=i))))
        o = cons.addr("OUT")
        cons.store(o, s)
        cons.ret(s)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_double_buffer(name: str, helper_blocks: int):
    """Writer fills the back buffer then flips CUR; reader spins on CUR."""

    def build():
        pb = new_program(name)
        pb.global_("CUR", 1)
        pb.global_("BUF", 4)  # two 2-word banks
        helper = make_condition_helper(pb, "check_flipped", helper_blocks, expect=1)

        wr = pb.function("writer")
        b = wr.addr("BUF")
        wr.store(b, 21, offset=2)
        wr.store(b, 22, offset=3)
        wr.store_global("CUR", 1)
        wr.ret()

        rd = pb.function("reader")
        c = rd.addr("CUR")
        spin_with_helper(rd, helper, c)
        b = rd.addr("BUF")
        v = rd.add(rd.load(b, offset=2), rd.load(b, offset=3))
        rd.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("reader", []), mn.spawn("writer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_chain(name: str, helper_blocks: int):
    """A -> B -> C handoff chain, each link with its own flag + helper."""

    def build():
        pb = new_program(name)
        pb.global_("F1", 1)
        pb.global_("F2", 1)
        pb.global_("V", 1)
        h1 = make_condition_helper(pb, "check_f1", helper_blocks, expect=1)
        h2 = make_condition_helper(pb, "check_f2", helper_blocks, expect=1)

        a = pb.function("stage_a")
        a.store_global("V", 1)
        a.store_global("F1", 1)
        a.ret()

        b = pb.function("stage_b")
        f1 = b.addr("F1")
        spin_with_helper(b, h1, f1)
        v = b.load_global("V")
        b.store_global("V", b.add(v, 10))
        b.store_global("F2", 1)
        b.ret()

        c = pb.function("stage_c")
        f2 = c.addr("F2")
        spin_with_helper(c, h2, f2)
        v = c.load_global("V")
        c.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("stage_c", []), mn.spawn("stage_b", []), mn.spawn("stage_a", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_pairs(name: str, helper_blocks: int):
    """Two independent flag/data pairs, four threads."""

    def build():
        pb = new_program(name)
        pb.global_("FLAG_A", 1)
        pb.global_("FLAG_B", 1)
        pb.global_("DA", 1)
        pb.global_("DB", 1)
        ha = make_condition_helper(pb, "check_a", helper_blocks, expect=1)
        hb = make_condition_helper(pb, "check_b", helper_blocks, expect=1)

        for suffix, helper in (("a", ha), ("b", hb)):
            prod = pb.function(f"producer_{suffix}")
            prod.store_global(f"D{suffix.upper()}", 77)
            prod.store_global(f"FLAG_{suffix.upper()}", 1)
            prod.ret()
            cons = pb.function(f"consumer_{suffix}")
            f = cons.addr(f"FLAG_{suffix.upper()}")
            spin_with_helper(cons, helper, f)
            v = cons.load_global(f"D{suffix.upper()}")
            cons.ret(v)

        mn = pb.function("main")
        tids = [
            mn.spawn("consumer_a", []),
            mn.spawn("consumer_b", []),
            mn.spawn("producer_a", []),
            mn.spawn("producer_b", []),
        ]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_not_condition(name: str, helper_blocks: int):
    """Spin on the *negation* of the helper result (``while helper()``)."""

    def build():
        pb = new_program(name)
        pb.global_("WAITING", 1, init=(1,))
        pb.global_("PAYLOAD", 1)
        helper = make_condition_helper(pb, "check_waiting", helper_blocks, expect=1)

        prod = pb.function("producer")
        prod.store_global("PAYLOAD", 99)
        prod.store_global("WAITING", 0)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("WAITING")
        head = cons.fresh_label("spin_head")
        body = cons.fresh_label("spin_body")
        after = cons.fresh_label("after")
        cons.jmp(head)
        cons.label(head)
        r = cons.call(helper, [f], want_result=True)
        done = cons.not_(r)
        cons.br(done, after, body)
        cons.label(body)
        cons.yield_()
        cons.jmp(head)
        cons.label(after)
        v = cons.load_global("PAYLOAD")
        cons.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _helper_main_waits(name: str, helper_blocks: int):
    """The *main* thread is the spinner (completion-flag detection)."""

    def build():
        pb = new_program(name)
        pb.global_("DONE", 1)
        pb.global_("RESULT", 1)
        helper = make_condition_helper(pb, "check_done", helper_blocks, expect=1)

        w = pb.function("worker")
        w.store_global("RESULT", 1234)
        w.store_global("DONE", 1)
        w.ret()

        mn = pb.function("main")
        t = mn.spawn("worker", [])
        f = mn.addr("DONE")
        spin_with_helper(mn, helper, f)
        mn.print_(mn.load_global("RESULT"))
        mn.join(t)
        mn.halt()
        return pb.build()

    return build


def _helper_reuse_values(name: str, helper_blocks: int):
    """The flag carries successive values 1 then 2 (two rounds).

    Each round publishes its own data word (``ROUND >= k`` conditions, so
    a consumer that arrives late never waits for a value that has already
    passed, and round-1 data is never overwritten).
    """

    def build():
        pb = new_program(name)
        pb.global_("ROUND", 1)
        pb.global_("DATA", 2)
        h1 = _ge_helper(pb, "check_r1", helper_blocks, threshold=1)
        h2 = _ge_helper(pb, "check_r2", helper_blocks, threshold=2)

        prod = pb.function("producer")
        d = prod.addr("DATA")
        prod.store(d, 1, offset=0)
        prod.store_global("ROUND", 1)
        busy_nops(prod, 8)
        prod.store(d, 2, offset=1)
        prod.store_global("ROUND", 2)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("ROUND")
        d = cons.addr("DATA")
        spin_with_helper(cons, h1, f)
        v1 = cons.load(d, offset=0)
        spin_with_helper(cons, h2, f)
        v2 = cons.load(d, offset=1)
        cons.ret(cons.add(v1, v2))

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def cases() -> List[Workload]:
    out: List[Workload] = []
    # --- effective size 2 and 3 (8 cases) ---
    out.append(
        Workload(
            name="adhoc_flag_basic",
            build=_flag_basic(1),
            threads=2,
            category="adhoc",
            description="classic DATA/FLAG handoff, 2-block spin loop",
        )
    )
    out.append(
        Workload(
            name="adhoc_flag_multi",
            build=_flag_basic(2, data_words=2),
            threads=3,
            category="adhoc",
            description="one producer, two spinning consumers",
        )
    )
    out.append(
        Workload(
            name="adhoc_flag_reverse",
            build=_flag_reverse(),
            threads=2,
            category="adhoc",
            description="spin until the flag is cleared",
        )
    )
    out.append(
        Workload(
            name="adhoc_handshake",
            build=_handshake(),
            threads=2,
            category="adhoc",
            description="bidirectional flag handshake",
        )
    )
    out.append(
        Workload(
            name="adhoc_generation",
            build=_generation_counter(),
            threads=2,
            category="adhoc",
            description="spin until a generation counter reaches a target",
        )
    )
    out.append(
        Workload(
            name="adhoc_user_spinlock",
            build=_user_spinlock(2),
            threads=2,
            category="adhoc",
            description="hand-rolled spin-then-CAS lock around a counter",
        )
    )
    out.append(
        Workload(
            name="adhoc_two_flags_3bb",
            build=_two_flag_3bb(),
            threads=3,
            category="adhoc",
            description="3-block spin loop over two flags",
        )
    )
    out.append(
        Workload(
            name="adhoc_split_cond_3bb",
            build=_split_condition_3bb(),
            threads=2,
            category="adhoc",
            description="condition split across two blocks (3-block loop)",
        )
    )
    # --- effective size 5 (1 case) ---
    out.append(
        Workload(
            name="adhoc_helper_eff5",
            build=_helper_handoff("adhoc_helper_eff5", _HELPER_EFF5),
            threads=2,
            category="adhoc",
            description="flag handoff, condition helper of 3 blocks (eff 5)",
        )
    )
    # --- effective size 7 (15 cases) ---
    eff7 = [
        ("adhoc7_handoff", _helper_handoff("adhoc7_handoff", _HELPER_EFF7), 2,
         "flag handoff through a 5-block condition helper"),
        ("adhoc7_handoff_3c", _helper_handoff("adhoc7_handoff_3c", _HELPER_EFF7, consumers=3), 4,
         "three consumers spin through the helper"),
        ("adhoc7_handoff_wide", _helper_handoff("adhoc7_handoff_wide", _HELPER_EFF7, data_words=6), 2,
         "six data words guarded by one helper flag"),
        ("adhoc7_handoff_atomic", _helper_handoff("adhoc7_handoff_atomic", _HELPER_EFF7, atomic_flag=True), 2,
         "counterpart write is an atomic exchange"),
        ("adhoc7_handshake", _helper_handshake("adhoc7_handshake", _HELPER_EFF7), 2,
         "bidirectional handshake with helpers"),
        ("adhoc7_reverse", _helper_reverse("adhoc7_reverse", _HELPER_EFF7), 2,
         "cleared-flag polarity with helper"),
        ("adhoc7_barrier3", _helper_barrier("adhoc7_barrier3", _HELPER_EFF7, threads=3), 3,
         "self-built barrier, arrivals counted atomically"),
        ("adhoc7_barrier4", _helper_barrier("adhoc7_barrier4", _HELPER_EFF7, threads=4), 4,
         "self-built 4-way barrier"),
        ("adhoc7_ring", _helper_ring("adhoc7_ring", _HELPER_EFF7), 2,
         "SPSC ring buffer with published tail"),
        ("adhoc7_double_buffer", _helper_double_buffer("adhoc7_double_buffer", _HELPER_EFF7), 2,
         "double-buffer flip with helper condition"),
        ("adhoc7_chain", _helper_chain("adhoc7_chain", _HELPER_EFF7), 3,
         "three-stage flag chain"),
        ("adhoc7_pairs", _helper_pairs("adhoc7_pairs", _HELPER_EFF7), 4,
         "two independent flag/data pairs"),
        ("adhoc7_not_cond", _helper_not_condition("adhoc7_not_cond", _HELPER_EFF7), 2,
         "negated helper condition"),
        ("adhoc7_main_waits", _helper_main_waits("adhoc7_main_waits", _HELPER_EFF7), 2,
         "main thread spins on a completion flag"),
        ("adhoc7_reuse", _helper_reuse_values("adhoc7_reuse", _HELPER_EFF7), 2,
         "flag reused across two rounds with different values"),
    ]
    for name, build, threads, desc in eff7:
        out.append(
            Workload(
                name=name,
                build=build,
                threads=threads,
                category="adhoc",
                description=desc,
            )
        )
    return out
