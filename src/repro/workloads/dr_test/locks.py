"""Race-free lock-based cases: mutexes, spinlocks, multiple and nested locks."""

from __future__ import annotations

from typing import List

from repro.harness.workload import Workload
from repro.runtime import MUTEX_SIZE, SPINLOCK_SIZE
from repro.workloads.common import counted_loop, finish_main, new_program


def _mutex_counter(threads: int, iters: int = 6):
    def build():
        pb = new_program(f"mutex_counter_{threads}")
        pb.global_("COUNTER", 1)
        pb.global_("M", MUTEX_SIZE)
        w = pb.function("worker")

        def body(fb, i):
            m = fb.addr("M")
            fb.call("mutex_lock", [m])
            a = fb.addr("COUNTER")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("mutex_unlock", [m])

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", []) for _ in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _spinlock_counter(threads: int, iters: int = 6):
    def build():
        pb = new_program(f"spinlock_counter_{threads}")
        pb.global_("COUNTER", 1)
        pb.global_("L", SPINLOCK_SIZE)
        w = pb.function("worker")

        def body(fb, i):
            l = fb.addr("L")
            fb.call("spinlock_acquire", [l])
            a = fb.addr("COUNTER")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("spinlock_release", [l])

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", []) for _ in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _two_locks_two_vars(threads: int, iters: int = 5):
    """Each variable consistently guarded by its own lock."""

    def build():
        pb = new_program(f"two_locks_{threads}")
        pb.global_("X", 1)
        pb.global_("Y", 1)
        pb.global_("MX", MUTEX_SIZE)
        pb.global_("MY", MUTEX_SIZE)
        w = pb.function("worker", params=("which",))

        def body(fb, i):
            mx = fb.addr("MX")
            my = fb.addr("MY")
            use_x = fb.eq("which", 0)
            tx = fb.fresh_label("takex")
            ty = fb.fresh_label("takey")
            done = fb.fresh_label("took")
            fb.br(use_x, tx, ty)
            fb.label(tx)
            fb.call("mutex_lock", [mx])
            a = fb.addr("X")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("mutex_unlock", [mx])
            fb.jmp(done)
            fb.label(ty)
            fb.call("mutex_lock", [my])
            a = fb.addr("Y")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("mutex_unlock", [my])
            fb.jmp(done)
            fb.label(done)

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [
            mn.spawn("worker", [mn.const(i % 2)]) for i in range(threads)
        ]
        finish_main(mn, tids)
        return pb.build()

    return build


def _nested_locks(threads: int, iters: int = 4):
    """Consistent nesting order MA -> MB protecting one variable."""

    def build():
        pb = new_program(f"nested_locks_{threads}")
        pb.global_("V", 1)
        pb.global_("MA", MUTEX_SIZE)
        pb.global_("MB", MUTEX_SIZE)
        w = pb.function("worker")

        def body(fb, i):
            ma = fb.addr("MA")
            mb = fb.addr("MB")
            fb.call("mutex_lock", [ma])
            fb.call("mutex_lock", [mb])
            a = fb.addr("V")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("mutex_unlock", [mb])
            fb.call("mutex_unlock", [ma])

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", []) for _ in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _lock_array(threads: int, slots: int = 8, iters: int = 6):
    """Striped locking: slot i guarded by lock i % 2."""

    def build():
        pb = new_program(f"lock_array_{threads}")
        pb.global_("ARR", slots)
        pb.global_("M0", MUTEX_SIZE)
        pb.global_("M1", MUTEX_SIZE)
        w = pb.function("worker", params=("start",))

        def body(fb, i):
            idx = fb.mod(fb.add("start", i), slots)
            stripe = fb.mod(idx, 2)
            m0 = fb.addr("M0")
            m1 = fb.addr("M1")
            use0 = fb.eq(stripe, 0)
            t0 = fb.fresh_label("s0")
            t1 = fb.fresh_label("s1")
            done = fb.fresh_label("sdone")
            fb.br(use0, t0, t1)
            for lbl, m in ((t0, m0), (t1, m1)):
                fb.label(lbl)
                fb.call("mutex_lock", [m])
                a = fb.add(fb.addr("ARR"), idx)
                fb.store(a, fb.add(fb.load(a), 1))
                fb.call("mutex_unlock", [m])
                fb.jmp(done)
            fb.label(done)

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", [mn.const(i * 3)]) for i in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _trylock_style(threads: int, iters: int = 5):
    """Spinlock with contention on a shared accumulator and local work."""

    def build():
        pb = new_program(f"trylock_style_{threads}")
        pb.global_("ACC", 1)
        pb.global_("L", SPINLOCK_SIZE)
        w = pb.function("worker", params=("k",))

        def body(fb, i):
            local = fb.mul(fb.add(i, "k"), 3)
            l = fb.addr("L")
            fb.call("spinlock_acquire", [l])
            a = fb.addr("ACC")
            fb.store(a, fb.add(fb.load(a), local))
            fb.call("spinlock_release", [l])

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", [mn.const(i + 1)]) for i in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _taslock_counter(threads: int, iters: int = 5):
    """Counter under the CAS-retry TAS lock.

    Race-free, and the ``lib`` configurations know the annotation — but
    the universal (nolib) detector cannot recover a CAS-retry loop, so
    this is the paper's "only one false positive more" case.
    """

    def build():
        pb = new_program(f"taslock_counter_{threads}")
        pb.global_("COUNTER", 1)
        pb.global_("T", 1)
        w = pb.function("worker")

        def body(fb, i):
            t = fb.addr("T")
            fb.call("taslock_acquire", [t])
            a = fb.addr("COUNTER")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("taslock_release", [t])

        counted_loop(w, iters, body)
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", []) for _ in range(threads)]
        finish_main(mn, tids)
        return pb.build()

    return build


def cases() -> List[Workload]:
    out: List[Workload] = []
    for threads in (2, 4, 8, 16):
        out.append(
            Workload(
                name=f"locks_mutex_counter_t{threads}",
                build=_mutex_counter(threads),
                threads=threads,
                category="locks",
                description=f"{threads} threads increment one counter under a mutex",
            )
        )
    for threads in (2, 4, 8):
        out.append(
            Workload(
                name=f"locks_spinlock_counter_t{threads}",
                build=_spinlock_counter(threads),
                threads=threads,
                category="locks",
                description=f"{threads} threads share a counter under a spinlock",
            )
        )
    for threads in (2, 4, 8):
        out.append(
            Workload(
                name=f"locks_two_locks_t{threads}",
                build=_two_locks_two_vars(threads),
                threads=threads,
                category="locks",
                description="two variables each guarded by their own mutex",
            )
        )
    for threads in (2, 4):
        out.append(
            Workload(
                name=f"locks_nested_t{threads}",
                build=_nested_locks(threads),
                threads=threads,
                category="locks",
                description="consistently ordered nested locks",
            )
        )
    for threads in (2, 4, 8):
        out.append(
            Workload(
                name=f"locks_striped_array_t{threads}",
                build=_lock_array(threads),
                threads=threads,
                category="locks",
                description="array slots under striped locks",
            )
        )
    for threads in (2, 4):
        out.append(
            Workload(
                name=f"locks_contended_spinlock_t{threads}",
                build=_trylock_style(threads),
                threads=threads,
                category="locks",
                description="contended spinlock around an accumulator",
            )
        )
    out.append(
        Workload(
            name="locks_taslock_t2",
            build=_taslock_counter(2),
            threads=2,
            category="locks",
            description="CAS-retry TAS lock (unrecoverable for nolib)",
        )
    )
    return out
