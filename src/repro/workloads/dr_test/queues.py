"""Race-free producer/consumer pipelines over the library task queue."""

from __future__ import annotations

from typing import List

from repro.harness.workload import Workload
from repro.runtime import MUTEX_SIZE, queue_size
from repro.workloads.common import counted_loop, finish_main, new_program


def _spsc(items: int, capacity: int = 4):
    def build():
        pb = new_program(f"queue_spsc_{items}")
        pb.global_("Q", queue_size(capacity))
        pb.global_("SINK", 1)

        prod = pb.function("producer")

        def pbody(fb, i):
            q = fb.addr("Q")
            fb.call("queue_push", [q, fb.add(i, 1)])

        counted_loop(prod, items, pbody)
        prod.ret()

        cons = pb.function("consumer")

        def cbody(fb, i):
            q = fb.addr("Q")
            item = fb.call("queue_pop", [q], want_result=True)
            a = fb.addr("SINK")
            fb.store(a, fb.add(fb.load(a), item))

        counted_loop(cons, items, cbody)
        cons.ret()

        mn = pb.function("main")
        q = mn.addr("Q")
        mn.call("queue_init", [q, mn.const(capacity)])
        tids = [mn.spawn("producer", []), mn.spawn("consumer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _mpmc(producers: int, consumers: int, per_producer: int, capacity: int = 4):
    """The SINK is guarded by a mutex (multiple consumers write it)."""

    def build():
        pb = new_program(f"queue_mpmc_{producers}x{consumers}")
        pb.global_("Q", queue_size(capacity))
        pb.global_("SINK", 1)
        pb.global_("SM", MUTEX_SIZE)

        prod = pb.function("producer", params=("base",))

        def pbody(fb, i):
            q = fb.addr("Q")
            fb.call("queue_push", [q, fb.add("base", i)])

        counted_loop(prod, per_producer, pbody)
        prod.ret()

        total = producers * per_producer
        assert total % consumers == 0
        per_consumer = total // consumers

        cons = pb.function("consumer")

        def cbody(fb, i):
            q = fb.addr("Q")
            item = fb.call("queue_pop", [q], want_result=True)
            sm = fb.addr("SM")
            fb.call("mutex_lock", [sm])
            a = fb.addr("SINK")
            fb.store(a, fb.add(fb.load(a), item))
            fb.call("mutex_unlock", [sm])

        counted_loop(cons, per_consumer, cbody)
        cons.ret()

        mn = pb.function("main")
        q = mn.addr("Q")
        mn.call("queue_init", [q, mn.const(capacity)])
        tids = [mn.spawn("producer", [mn.const(100 * (i + 1))]) for i in range(producers)]
        tids += [mn.spawn("consumer", []) for _ in range(consumers)]
        finish_main(mn, tids)
        return pb.build()

    return build


def _two_stage_pipeline(items: int, capacity: int = 3):
    """producer -> Q1 -> transformer -> Q2 -> sink thread."""

    def build():
        pb = new_program(f"queue_pipeline_{items}")
        pb.global_("Q1", queue_size(capacity))
        pb.global_("Q2", queue_size(capacity))
        pb.global_("OUT", 1)

        prod = pb.function("producer")

        def pbody(fb, i):
            q = fb.addr("Q1")
            fb.call("queue_push", [q, fb.add(i, 1)])

        counted_loop(prod, items, pbody)
        prod.ret()

        trans = pb.function("transformer")

        def tbody(fb, i):
            q1 = fb.addr("Q1")
            q2 = fb.addr("Q2")
            item = fb.call("queue_pop", [q1], want_result=True)
            fb.call("queue_push", [q2, fb.mul(item, 2)])

        counted_loop(trans, items, tbody)
        trans.ret()

        sink = pb.function("sink")

        def sbody(fb, i):
            q2 = fb.addr("Q2")
            item = fb.call("queue_pop", [q2], want_result=True)
            a = fb.addr("OUT")
            fb.store(a, fb.add(fb.load(a), item))

        counted_loop(sink, items, sbody)
        sink.ret()

        mn = pb.function("main")
        q1 = mn.addr("Q1")
        q2 = mn.addr("Q2")
        mn.call("queue_init", [q1, mn.const(capacity)])
        mn.call("queue_init", [q2, mn.const(capacity)])
        tids = [mn.spawn("producer", []), mn.spawn("transformer", []), mn.spawn("sink", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def cases() -> List[Workload]:
    out: List[Workload] = []
    for items in (6, 12):
        out.append(
            Workload(
                name=f"queue_spsc_i{items}",
                build=_spsc(items),
                threads=2,
                category="queues",
                description="single producer, single consumer task queue",
            )
        )
    for p, c in ((2, 2), (4, 2)):
        out.append(
            Workload(
                name=f"queue_mpmc_{p}p{c}c",
                build=_mpmc(p, c, 4),
                threads=p + c,
                category="queues",
                description="multi-producer multi-consumer task queue",
            )
        )
    out.append(
        Workload(
            name="queue_pipeline_2stage",
            build=_two_stage_pipeline(6),
            threads=3,
            category="queues",
            description="two queues chained through a transformer stage",
        )
    )
    return out
