"""Race-free but *undetectable* ad-hoc cases — the residual false positives.

These reproduce the constructs the paper reports as defeating spin-loop
detection even at spin(7)/spin(8) (slides 24/25/29):

* conditions evaluated through **function pointers** (statically opaque);
* spin loops whose effective window exceeds 8 basic blocks;
* **impure** poll loops that write bookkeeping state while waiting
  ("obscure implementation of task queue");
* condition helpers nested deeper than the inlining budget;
* conditions mixing the flag with loop-carried counters (the value of
  the condition changes inside the loop).

All eight are correctly synchronized, so every warning on them is a
false alarm — they are the floor under the spin(k) curves.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Const, Mov
from repro.harness.workload import Workload
from repro.workloads.common import (
    finish_main,
    make_condition_helper,
    new_program,
    spin_with_funcptr,
)


def _funcptr_case(name: str, consumers: int):
    def build():
        pb = new_program(name)
        pb.global_("FLAG", 1)
        pb.global_("DATA", 2)
        helper = make_condition_helper(pb, "check_ready", 2, expect=1)

        prod = pb.function("producer")
        d = prod.addr("DATA")
        prod.store(d, 8, offset=0)
        prod.store(d, 9, offset=1)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        spin_with_funcptr(cons, helper, f)
        d = cons.addr("DATA")
        v = cons.add(cons.load(d, offset=0), cons.load(d, offset=1))
        cons.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []) for _ in range(consumers)]
        tids.append(mn.spawn("producer", []))
        finish_main(mn, tids)
        return pb.build()

    return build


def _oversized(name: str, helper_blocks: int):
    """Effective window 2 + helper_blocks > 8: outside every spin(k)."""

    def build():
        pb = new_program(name)
        pb.global_("FLAG", 1)
        pb.global_("DATA", 1)
        helper = make_condition_helper(pb, "check_big", helper_blocks, expect=1)

        prod = pb.function("producer")
        prod.store_global("DATA", 64)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        head = cons.fresh_label("spin_head")
        body = cons.fresh_label("spin_body")
        after = cons.fresh_label("after")
        cons.jmp(head)
        cons.label(head)
        r = cons.call(helper, [f], want_result=True)
        cons.br(r, after, body)
        cons.label(body)
        cons.yield_()
        cons.jmp(head)
        cons.label(after)
        v = cons.load_global("DATA")
        cons.ret(v)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _impure_poll(name: str):
    """The wait loop *stores* a progress counter each iteration —
    the body is not 'do nothing', so the loop is rejected."""

    def build():
        pb = new_program(name)
        pb.global_("FLAG", 1)
        pb.global_("DATA", 1)
        pb.global_("POLLS", 1)

        prod = pb.function("producer")
        prod.store_global("DATA", 31)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        p = cons.addr("POLLS")
        cons.jmp("head")
        cons.label("head")
        v = cons.load(f)
        ready = cons.ne(v, 0)
        cons.br(ready, "after", "body")
        cons.label("body")
        cons.store(p, cons.add(cons.load(p), 1))
        cons.yield_()
        cons.jmp("head")
        cons.label("after")
        d = cons.load_global("DATA")
        cons.ret(d)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _obscure_queue(name: str):
    """Dedup/ferret-style obscure task queue: the consumer's wait loop
    records its observed sequence number in shared memory while polling,
    so it does not match the spinning-read pattern."""

    def build():
        pb = new_program(name)
        pb.global_("SEQ", 1)
        pb.global_("SLOT", 1)
        pb.global_("LAST_SEEN", 1)
        pb.global_("OUT", 1)

        prod = pb.function("producer")
        prod.store_global("SLOT", 123)
        prod.store_global("SEQ", 1)
        prod.ret()

        cons = pb.function("consumer")
        sq = cons.addr("SEQ")
        seen = cons.addr("LAST_SEEN")
        cons.jmp("head")
        cons.label("head")
        v = cons.load(sq)
        cons.store(seen, v)  # bookkeeping write inside the wait loop
        avail = cons.ne(v, 0)
        cons.br(avail, "take", "body")
        cons.label("body")
        cons.yield_()
        cons.jmp("head")
        cons.label("take")
        item = cons.load_global("SLOT")
        cons.store_global("OUT", item)
        cons.ret(item)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _deep_chain(name: str):
    """Condition helper calls a second helper that does the load —
    beyond the default inlining depth of 1."""

    def build():
        pb = new_program(name)
        pb.global_("FLAG", 1)
        pb.global_("DATA", 1)

        inner = pb.function("check_inner", params=("flag",))
        v = inner.load("flag")
        r = inner.eq(v, 1)
        inner.ret(r)

        outer = pb.function("check_outer", params=("flag",))
        r = outer.call("check_inner", ["flag"], want_result=True)
        outer.ret(r)

        prod = pb.function("producer")
        prod.store_global("DATA", 17)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        cons.jmp("head")
        cons.label("head")
        r = cons.call("check_outer", [f], want_result=True)
        cons.br(r, "after", "body")
        cons.label("body")
        cons.yield_()
        cons.jmp("head")
        cons.label("after")
        d = cons.load_global("DATA")
        cons.ret(d)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def _counted_timeout(name: str):
    """Condition mixes the flag with a loop-carried attempt counter, so
    the condition's value changes inside the loop — rejected by the
    paper's criteria.  (The program still synchronizes correctly: the
    attempt bound is astronomically larger than any schedule we run.)"""

    def build():
        pb = new_program(name)
        pb.global_("FLAG", 1)
        pb.global_("DATA", 1)

        prod = pb.function("producer")
        prod.store_global("DATA", 71)
        prod.store_global("FLAG", 1)
        prod.ret()

        cons = pb.function("consumer")
        f = cons.addr("FLAG")
        attempts = cons.reg("attempts")
        cons.emit(Const(attempts, 0))
        cons.jmp("head")
        cons.label("head")
        v = cons.load(f)
        got = cons.ne(v, 0)
        timeout = cons.gt(attempts, 1_000_000_000)
        stop = cons.or_(got, timeout)
        cons.br(stop, "after", "body")
        cons.label("body")
        cons.emit(Mov(attempts, cons.add(attempts, 1)))
        cons.yield_()
        cons.jmp("head")
        cons.label("after")
        d = cons.load_global("DATA")
        cons.ret(d)

        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    return build


def cases() -> List[Workload]:
    return [
        Workload(
            name="hard_funcptr",
            build=_funcptr_case("hard_funcptr", 1),
            threads=2,
            category="hard",
            description="spin condition behind a function pointer",
        ),
        Workload(
            name="hard_funcptr_multi",
            build=_funcptr_case("hard_funcptr_multi", 2),
            threads=3,
            category="hard",
            description="two consumers spin through a function pointer",
        ),
        Workload(
            name="hard_oversized_eff9",
            build=_oversized("hard_oversized_eff9", 7),
            threads=2,
            category="hard",
            description="effective window 9 basic blocks (beyond spin(8))",
        ),
        Workload(
            name="hard_oversized_eff10",
            build=_oversized("hard_oversized_eff10", 8),
            threads=2,
            category="hard",
            description="effective window 10 basic blocks",
        ),
        Workload(
            name="hard_impure_poll",
            build=_impure_poll("hard_impure_poll"),
            threads=2,
            category="hard",
            description="wait loop stores a progress counter (impure body)",
        ),
        Workload(
            name="hard_obscure_queue",
            build=_obscure_queue("hard_obscure_queue"),
            threads=2,
            category="hard",
            description="obscure task queue writing bookkeeping while polling",
        ),
        Workload(
            name="hard_deep_chain",
            build=_deep_chain("hard_deep_chain"),
            threads=2,
            category="hard",
            description="condition load nested two calls deep",
        ),
        Workload(
            name="hard_counted_timeout",
            build=_counted_timeout("hard_counted_timeout"),
            threads=2,
            category="hard",
            description="condition mixes the flag with a loop-carried counter",
        ),
    ]
