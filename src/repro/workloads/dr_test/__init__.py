"""The data-race-test style suite: 120 cases with ground truth.

Generator families (one module each) mirror the difficulty axes of the
Google data-race-test suite the paper evaluates on:

* :mod:`locks` — mutex/spinlock-protected sharing (race-free);
* :mod:`condvars` — signal/wait protocols (race-free);
* :mod:`barriers` — phased computation (race-free);
* :mod:`semaphores` — counting-semaphore protocols (race-free);
* :mod:`queues` — library task-queue pipelines (race-free);
* :mod:`adhoc` — ad-hoc spin-flag synchronization of controlled
  basic-block geometry (race-free, the false-positive battleground);
* :mod:`hard` — constructs designed to defeat spin detection:
  function-pointer conditions, oversized windows, impure poll loops,
  deep call chains (race-free but undetectable — residual FPs);
* :mod:`racy` — true races, including schedule-masked ones that
  separate the hybrid from the pure-hb baseline.

:func:`repro.workloads.dr_test.suite.build_suite` assembles exactly 120.
"""
