"""Unit tests for the textual assembler."""

import pytest

from repro.isa import instructions as ins
from repro.isa.asm import AsmError, assemble, disassemble
from repro.isa.builder import ProgramBuilder
from repro.isa.program import SyncAnnotation, SyncKind
from repro.runtime import build_library

SAMPLE = """
program demo entry=main

global FLAG size=1 init=0
global DATA size=4 init=1,2,3,4

func helper(x) {
entry:
    r = add x, x
    ret r
}

func lock_fn(l) annotation=lock_acquire:0 library {
entry:
    ret
}

func wait_fn(cv, m) annotation=cv_wait:0:1 library {
entry:
    ret
}

func main() {
entry:
    a = addr FLAG
    v = load a+0
    c = const 3
    s = eq v, c
    br s, done, loop
loop:
    yield
    jmp entry
done:
    r = call helper(c)
    t = spawn helper(r)
    join t
    fp = funcaddr helper
    q = icall fp(r)
    print q
    halt
}
"""


class TestAssemble:
    def test_sample_parses(self):
        p = assemble(SAMPLE)
        assert p.name == "demo"
        assert p.entry == "main"
        assert p.globals["DATA"].init == (1, 2, 3, 4)
        assert set(p.functions) == {"helper", "lock_fn", "wait_fn", "main"}

    def test_annotation_parsed(self):
        p = assemble(SAMPLE)
        ann = p.functions["lock_fn"].annotation
        assert ann.kind is SyncKind.LOCK_ACQUIRE
        assert ann.obj_arg == 0
        assert p.functions["lock_fn"].is_library

    def test_cv_wait_mutex_arg_parsed(self):
        p = assemble(SAMPLE)
        ann = p.functions["wait_fn"].annotation
        assert ann.kind is SyncKind.CV_WAIT
        assert ann.mutex_arg == 1

    def test_instructions_decoded(self):
        p = assemble(SAMPLE)
        entry = p.functions["main"].blocks["entry"]
        assert isinstance(entry.instructions[0], ins.Addr)
        assert isinstance(entry.instructions[1], ins.Load)
        assert isinstance(entry.instructions[-1], ins.Br)

    def test_comments_and_blank_lines_ignored(self):
        text = "program p entry=main\n# comment\n\nfunc main() {\nentry:\n    halt  # trailing\n}\n"
        p = assemble(text)
        assert isinstance(p.functions["main"].blocks["entry"].instructions[0], ins.Halt)

    def test_missing_header_raises(self):
        with pytest.raises(AsmError, match="program"):
            assemble("func main() {\nentry:\n    halt\n}")

    def test_unknown_opcode_raises(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble("program p entry=m\nfunc m() {\nentry:\n    frobnicate x\n}")

    def test_instruction_outside_block_raises(self):
        with pytest.raises(AsmError, match="outside block"):
            assemble("program p entry=m\nfunc m() {\n    halt\n}")

    def test_malformed_memory_operand_raises(self):
        with pytest.raises(AsmError, match="ADDR"):
            assemble("program p entry=m\nfunc m() {\nentry:\n    x = load ptr\n}")

    def test_line_numbers_in_errors(self):
        try:
            assemble("program p entry=m\nfunc m() {\nentry:\n    bogus op\n}")
            assert False
        except AsmError as e:
            assert e.line_no == 4


class TestRoundTrip:
    def test_sample_round_trips(self):
        p = assemble(SAMPLE)
        text = disassemble(p)
        p2 = assemble(text)
        assert disassemble(p2) == text

    def test_library_round_trips(self):
        lib = build_library()
        text = disassemble(lib)
        lib2 = assemble(text)
        assert disassemble(lib2) == text
        for name, func in lib.functions.items():
            assert lib2.functions[name].annotation == func.annotation
            assert lib2.functions[name].is_library == func.is_library
            assert lib2.functions[name].instruction_count() == func.instruction_count()

    def test_builder_program_round_trips(self):
        pb = ProgramBuilder("rt")
        pb.global_("G", 3, init=(9, 8, 7))
        mn = pb.function("main")
        a = mn.addr("G")
        mn.store(a, mn.atomic_add(a, 1, offset=2), offset=0)
        mn.emit(ins.AtomicCas(mn.reg(), a, mn.const(0), mn.const(1), 1))
        x = mn.atomic_xchg(a, 5)
        mn.fence()
        mn.print_(x)
        mn.halt()
        p = pb.build()
        assert disassemble(assemble(disassemble(p))) == disassemble(p)
