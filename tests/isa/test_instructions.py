"""Unit tests for instruction definitions: defs/uses and terminators."""

import pytest

from repro.isa import instructions as ins


class TestDefsUses:
    def test_const_defines_dst(self):
        i = ins.Const("d", 5)
        assert i.defs() == ("d",)
        assert i.uses() == ()

    def test_mov(self):
        i = ins.Mov("d", "s")
        assert i.defs() == ("d",)
        assert i.uses() == ("s",)

    def test_alu(self):
        i = ins.Alu(ins.AluOp.ADD, "d", "a", "b")
        assert i.defs() == ("d",)
        assert i.uses() == ("a", "b")

    def test_cmp(self):
        i = ins.Cmp(ins.CmpOp.LT, "d", "a", "b")
        assert i.defs() == ("d",)
        assert i.uses() == ("a", "b")

    def test_not(self):
        i = ins.Not("d", "s")
        assert i.defs() == ("d",)
        assert i.uses() == ("s",)

    def test_load(self):
        i = ins.Load("d", "p", 3)
        assert i.defs() == ("d",)
        assert i.uses() == ("p",)

    def test_store_defines_nothing(self):
        i = ins.Store("p", "v", 1)
        assert i.defs() == ()
        assert set(i.uses()) == {"p", "v"}

    def test_atomic_cas(self):
        i = ins.AtomicCas("d", "p", "e", "n")
        assert i.defs() == ("d",)
        assert set(i.uses()) == {"p", "e", "n"}

    def test_atomic_add(self):
        i = ins.AtomicAdd("d", "p", "a")
        assert i.defs() == ("d",)
        assert set(i.uses()) == {"p", "a"}

    def test_atomic_xchg(self):
        i = ins.AtomicXchg("d", "p", "s")
        assert i.defs() == ("d",)
        assert set(i.uses()) == {"p", "s"}

    def test_br_uses_condition(self):
        i = ins.Br("c", "t", "e")
        assert i.uses() == ("c",)
        assert i.defs() == ()

    def test_call_with_and_without_dst(self):
        with_dst = ins.Call("f", ("a",), "d")
        assert with_dst.defs() == ("d",)
        assert with_dst.uses() == ("a",)
        void = ins.Call("f", ("a",), None)
        assert void.defs() == ()

    def test_icall_uses_target(self):
        i = ins.ICall("fp", ("a", "b"), "d")
        assert i.uses() == ("fp", "a", "b")
        assert i.defs() == ("d",)

    def test_ret_optional_value(self):
        assert ins.Ret("v").uses() == ("v",)
        assert ins.Ret(None).uses() == ()

    def test_spawn(self):
        i = ins.Spawn("tid", "worker", ("x",))
        assert i.defs() == ("tid",)
        assert i.uses() == ("x",)

    def test_join(self):
        assert ins.Join("t").uses() == ("t",)

    def test_alloc(self):
        i = ins.Alloc("d", "n")
        assert i.defs() == ("d",)
        assert i.uses() == ("n",)

    def test_addr_and_funcaddr(self):
        assert ins.Addr("d", "G").defs() == ("d",)
        assert ins.FuncAddr("d", "f").defs() == ("d",)

    def test_print(self):
        assert ins.Print("v").uses() == ("v",)


class TestTerminators:
    @pytest.mark.parametrize(
        "instr",
        [ins.Jmp("l"), ins.Br("c", "a", "b"), ins.Ret(None), ins.Halt()],
    )
    def test_terminators(self, instr):
        assert ins.is_terminator(instr)

    @pytest.mark.parametrize(
        "instr",
        [
            ins.Const("d", 1),
            ins.Call("f", (), None),
            ins.Spawn("d", "f", ()),
            ins.Join("t"),
            ins.Yield(),
            ins.Nop(),
            ins.Fence(),
        ],
    )
    def test_non_terminators(self, instr):
        assert not ins.is_terminator(instr)


class TestImmutability:
    def test_instructions_are_frozen(self):
        i = ins.Const("d", 1)
        with pytest.raises(Exception):
            i.dst = "other"  # type: ignore[misc]

    def test_instructions_are_hashable(self):
        assert {ins.Const("d", 1), ins.Const("d", 1)} == {ins.Const("d", 1)}

    def test_mnemonic(self):
        assert ins.Const("d", 1).mnemonic == "const"
        assert ins.AtomicCas("d", "p", "e", "n").mnemonic == "atomiccas"
