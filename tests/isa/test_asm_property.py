"""Property-based tests: the assembler round-trips arbitrary programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import instructions as ins
from repro.isa.asm import assemble, disassemble
from repro.isa.program import BasicBlock, Function, GlobalVar, Program

REG_NAMES = st.sampled_from(["%r1", "%r2", "%tmp", "%x", "%acc"])
LABELS = ["entry", "blk_a", "blk_b", "blk_c"]


@st.composite
def straight_line_instr(draw):
    """A non-terminator instruction over a small register universe."""
    kind = draw(st.integers(0, 10))
    r = lambda: draw(REG_NAMES)
    if kind == 0:
        return ins.Const(r(), draw(st.integers(-1000, 1000)))
    if kind == 1:
        return ins.Mov(r(), r())
    if kind == 2:
        return ins.Alu(draw(st.sampled_from(list(ins.AluOp))), r(), r(), r())
    if kind == 3:
        return ins.Cmp(draw(st.sampled_from(list(ins.CmpOp))), r(), r(), r())
    if kind == 4:
        return ins.Not(r(), r())
    if kind == 5:
        return ins.Load(r(), r(), draw(st.integers(0, 8)))
    if kind == 6:
        return ins.Store(r(), r(), draw(st.integers(0, 8)))
    if kind == 7:
        return ins.AtomicCas(r(), r(), r(), r(), draw(st.integers(0, 4)))
    if kind == 8:
        return ins.AtomicAdd(r(), r(), r(), draw(st.integers(0, 4)))
    if kind == 9:
        return ins.Yield()
    return ins.Nop()


@st.composite
def terminator(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return ins.Jmp(draw(st.sampled_from(LABELS)))
    if kind == 1:
        return ins.Br(
            draw(REG_NAMES),
            draw(st.sampled_from(LABELS)),
            draw(st.sampled_from(LABELS)),
        )
    if kind == 2:
        return ins.Ret(draw(st.one_of(st.none(), REG_NAMES)))
    return ins.Halt()


@st.composite
def programs(draw):
    p = Program(name="fuzz", entry="main")
    n_globals = draw(st.integers(0, 3))
    for g in range(n_globals):
        size = draw(st.integers(1, 4))
        init = tuple(
            draw(st.lists(st.integers(-99, 99), max_size=size, min_size=0))
        )
        p.add_global(GlobalVar(f"G{g}", size, init))
    f = Function("main")
    for label in LABELS:
        body = draw(st.lists(straight_line_instr(), min_size=0, max_size=5))
        body.append(draw(terminator()))
        f.add_block(BasicBlock(label, body))
    p.add_function(f)
    return p


@given(programs())
@settings(max_examples=120, deadline=None)
def test_disassemble_assemble_fixpoint(program):
    """assemble(disassemble(p)) prints identically to p."""
    text = disassemble(program)
    reparsed = assemble(text)
    assert disassemble(reparsed) == text


@given(programs())
@settings(max_examples=60, deadline=None)
def test_round_trip_preserves_structure(program):
    reparsed = assemble(disassemble(program))
    assert set(reparsed.functions) == set(program.functions)
    assert set(reparsed.globals) == set(program.globals)
    for name, func in program.functions.items():
        other = reparsed.functions[name]
        assert list(other.blocks) == list(func.blocks)
        for label, block in func.blocks.items():
            assert other.blocks[label].instructions == block.instructions
    for name, g in program.globals.items():
        og = reparsed.globals[name]
        assert og.size == g.size
        assert og.init == g.init
