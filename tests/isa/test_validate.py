"""Unit tests for program validation — each error class is caught."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.isa.program import (
    BasicBlock,
    Function,
    GlobalVar,
    Program,
    SyncAnnotation,
    SyncKind,
)
from repro.isa.validate import ValidationError, validate_function, validate_program


def _minimal() -> Program:
    pb = ProgramBuilder("p")
    mn = pb.function("main")
    mn.halt()
    return pb.build()


def test_valid_program_passes():
    validate_program(_minimal())


def test_missing_entry_function():
    p = Program(entry="main")
    with pytest.raises(ValidationError, match="entry function"):
        validate_program(p)


def test_empty_block_rejected():
    p = _minimal()
    p.functions["main"].add_block(BasicBlock("empty"))
    with pytest.raises(ValidationError, match="empty block"):
        validate_program(p)


def test_missing_terminator_rejected():
    p = Program()
    f = Function("main")
    f.add_block(BasicBlock("entry", [ins.Nop()]))
    p.add_function(f)
    with pytest.raises(ValidationError, match="terminator"):
        validate_program(p)


def test_mid_block_terminator_rejected():
    p = Program()
    f = Function("main")
    f.add_block(BasicBlock("entry", [ins.Halt(), ins.Halt()]))
    p.add_function(f)
    with pytest.raises(ValidationError, match="mid-block"):
        validate_program(p)


def test_unknown_jump_target():
    p = Program()
    f = Function("main")
    f.add_block(BasicBlock("entry", [ins.Jmp("nowhere")]))
    p.add_function(f)
    with pytest.raises(ValidationError, match="unknown block"):
        validate_program(p)


def test_unknown_branch_target():
    p = Program()
    f = Function("main")
    f.add_block(
        BasicBlock("entry", [ins.Const("c", 1), ins.Br("c", "entry", "nope")])
    )
    p.add_function(f)
    with pytest.raises(ValidationError, match="unknown block"):
        validate_program(p)


def test_unknown_call_target():
    pb = ProgramBuilder("p")
    mn = pb.function("main")
    mn.call("ghost", [])
    mn.halt()
    with pytest.raises(ValidationError, match="unknown function"):
        validate_program(pb.build())


def test_call_arity_mismatch():
    pb = ProgramBuilder("p")
    g = pb.function("g", params=("a", "b"))
    g.ret()
    mn = pb.function("main")
    mn.call("g", [mn.const(1)])
    mn.halt()
    with pytest.raises(ValidationError, match="takes 2"):
        validate_program(pb.build())


def test_spawn_arity_mismatch():
    pb = ProgramBuilder("p")
    w = pb.function("w", params=("a",))
    w.ret()
    mn = pb.function("main")
    mn.emit(ins.Spawn("t", "w", ()))
    mn.halt()
    with pytest.raises(ValidationError, match="takes 1"):
        validate_program(pb.build())


def test_unknown_global():
    pb = ProgramBuilder("p")
    mn = pb.function("main")
    mn.addr("GHOST")
    mn.halt()
    with pytest.raises(ValidationError, match="unknown global"):
        validate_program(pb.build())


def test_unknown_funcaddr():
    pb = ProgramBuilder("p")
    mn = pb.function("main")
    mn.func_addr("ghost")
    mn.halt()
    with pytest.raises(ValidationError, match="unknown function"):
        validate_program(pb.build())


def test_undefined_register_use():
    p = Program()
    f = Function("main")
    f.add_block(BasicBlock("entry", [ins.Print("never_set"), ins.Halt()]))
    p.add_function(f)
    with pytest.raises(ValidationError, match="never defined"):
        validate_program(p)


def test_annotation_obj_arg_out_of_range():
    p = _minimal()
    f = Function(
        "lk", params=("l",), annotation=SyncAnnotation(SyncKind.LOCK_ACQUIRE, obj_arg=3)
    )
    f.add_block(BasicBlock("entry", [ins.Ret(None)]))
    p.add_function(f)
    with pytest.raises(ValidationError, match="out of range"):
        validate_program(p)


def test_validate_function_single():
    p = _minimal()
    validate_function(p.functions["main"], p)


def test_error_collects_multiple_problems():
    p = Program()
    f = Function("main")
    f.add_block(BasicBlock("entry", [ins.Jmp("a")]))
    f.add_block(BasicBlock("x", [ins.Jmp("b")]))
    p.add_function(f)
    try:
        validate_program(p)
        assert False, "should have raised"
    except ValidationError as e:
        assert len(e.errors) >= 2
