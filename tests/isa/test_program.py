"""Unit tests for program/function/block containers."""

import pytest

from repro.isa import instructions as ins
from repro.isa.program import (
    BasicBlock,
    CodeLocation,
    Function,
    GlobalVar,
    Program,
    SyncAnnotation,
    SyncKind,
)


class TestBasicBlock:
    def test_terminator_of_empty_block_raises(self):
        with pytest.raises(ValueError):
            BasicBlock("b").terminator

    def test_terminator_returns_last(self):
        b = BasicBlock("b", [ins.Nop(), ins.Ret(None)])
        assert isinstance(b.terminator, ins.Ret)

    def test_len_and_iter(self):
        b = BasicBlock("b", [ins.Nop(), ins.Nop(), ins.Ret(None)])
        assert len(b) == 3
        assert len(list(b)) == 3


class TestFunction:
    def test_duplicate_block_rejected(self):
        f = Function("f")
        f.add_block(BasicBlock("entry"))
        with pytest.raises(ValueError):
            f.add_block(BasicBlock("entry"))

    def test_locations_iterates_in_order(self):
        f = Function("f")
        f.add_block(BasicBlock("entry", [ins.Nop(), ins.Ret(None)]))
        locs = list(f.locations())
        assert locs[0][0] == CodeLocation("f", "entry", 0)
        assert locs[1][0] == CodeLocation("f", "entry", 1)

    def test_instruction_count(self):
        f = Function("f")
        f.add_block(BasicBlock("entry", [ins.Nop(), ins.Ret(None)]))
        f.add_block(BasicBlock("other", [ins.Halt()]))
        assert f.instruction_count() == 3


class TestGlobalVar:
    def test_initial_words_zero_filled(self):
        g = GlobalVar("g", size=4, init=(7,))
        assert g.initial_words() == (7, 0, 0, 0)

    def test_initial_words_truncated_to_size(self):
        g = GlobalVar("g", size=2, init=(1, 2, 3))
        assert g.initial_words() == (1, 2)


class TestProgram:
    def _func(self, name: str) -> Function:
        f = Function(name)
        f.add_block(BasicBlock("entry", [ins.Ret(None)]))
        return f

    def test_duplicate_function_rejected(self):
        p = Program()
        p.add_function(self._func("f"))
        with pytest.raises(ValueError):
            p.add_function(self._func("f"))

    def test_duplicate_global_rejected(self):
        p = Program()
        p.add_global(GlobalVar("g"))
        with pytest.raises(ValueError):
            p.add_global(GlobalVar("g"))

    def test_merge_links_functions_and_globals(self):
        a = Program()
        a.add_function(self._func("main"))
        b = Program()
        b.add_function(self._func("helper"))
        b.add_global(GlobalVar("g"))
        a.merge(b)
        assert "helper" in a.functions
        assert "g" in a.globals
        assert a.entry == "main"

    def test_merge_collision_raises(self):
        a = Program()
        a.add_function(self._func("f"))
        b = Program()
        b.add_function(self._func("f"))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_instruction_at(self):
        p = Program()
        p.add_function(self._func("f"))
        instr = p.instruction_at(CodeLocation("f", "entry", 0))
        assert isinstance(instr, ins.Ret)

    def test_instruction_count_sums_functions(self):
        p = Program()
        p.add_function(self._func("a"))
        p.add_function(self._func("b"))
        assert p.instruction_count() == 2


class TestSyncAnnotation:
    def test_cv_wait_carries_mutex_arg(self):
        ann = SyncAnnotation(SyncKind.CV_WAIT, obj_arg=0, mutex_arg=1)
        assert ann.mutex_arg == 1

    def test_default_has_no_mutex_arg(self):
        assert SyncAnnotation(SyncKind.LOCK_ACQUIRE).mutex_arg is None


class TestCodeLocation:
    def test_str_format(self):
        assert str(CodeLocation("f", "b", 3)) == "f:b:3"

    def test_hashable_and_equal(self):
        assert CodeLocation("f", "b", 0) == CodeLocation("f", "b", 0)
        assert len({CodeLocation("f", "b", 0), CodeLocation("f", "b", 0)}) == 1
