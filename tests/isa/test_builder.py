"""Unit tests for the fluent IR builders."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import FunctionBuilder, ProgramBuilder
from repro.isa.program import SyncAnnotation, SyncKind
from repro.isa.validate import validate_program


class TestFunctionBuilder:
    def test_starts_in_entry_block(self):
        fb = FunctionBuilder("f")
        assert fb.current_label == "entry"
        assert fb.func.entry == "entry"

    def test_fresh_registers_unique(self):
        fb = FunctionBuilder("f")
        regs = {fb.reg() for _ in range(100)}
        assert len(regs) == 100

    def test_fresh_labels_unique(self):
        fb = FunctionBuilder("f")
        labels = {fb.fresh_label() for _ in range(50)}
        assert len(labels) == 50

    def test_emit_after_terminator_raises(self):
        fb = FunctionBuilder("f")
        fb.ret()
        with pytest.raises(ValueError):
            fb.nop()

    def test_label_switches_blocks(self):
        fb = FunctionBuilder("f")
        fb.jmp("next")
        fb.label("next")
        fb.ret()
        assert set(fb.func.blocks) == {"entry", "next"}

    def test_label_can_reopen_unterminated_block(self):
        fb = FunctionBuilder("f")
        fb.nop()
        fb.label("other")
        fb.ret()
        fb.label("entry")  # back to entry, which is unterminated
        fb.jmp("other")
        assert isinstance(fb.func.blocks["entry"].terminator, ins.Jmp)

    def test_int_operands_materialized_as_consts(self):
        fb = FunctionBuilder("f")
        fb.add(1, 2)
        kinds = [type(i) for i in fb.func.blocks["entry"].instructions]
        assert kinds == [ins.Const, ins.Const, ins.Alu]

    def test_call_with_result(self):
        fb = FunctionBuilder("f")
        r = fb.call("g", [], want_result=True)
        assert r is not None
        call = fb.func.blocks["entry"].instructions[-1]
        assert isinstance(call, ins.Call) and call.dst == r

    def test_call_void(self):
        fb = FunctionBuilder("f")
        assert fb.call("g", []) is None

    def test_comparison_helpers(self):
        fb = FunctionBuilder("f")
        a, b = fb.const(1), fb.const(2)
        for helper, op in [
            (fb.eq, ins.CmpOp.EQ),
            (fb.ne, ins.CmpOp.NE),
            (fb.lt, ins.CmpOp.LT),
            (fb.le, ins.CmpOp.LE),
            (fb.gt, ins.CmpOp.GT),
            (fb.ge, ins.CmpOp.GE),
        ]:
            helper(a, b)
            cmp_instr = fb.func.blocks["entry"].instructions[-1]
            assert isinstance(cmp_instr, ins.Cmp) and cmp_instr.op is op

    def test_alu_helpers(self):
        fb = FunctionBuilder("f")
        a, b = fb.const(6), fb.const(3)
        for helper, op in [
            (fb.add, ins.AluOp.ADD),
            (fb.sub, ins.AluOp.SUB),
            (fb.mul, ins.AluOp.MUL),
            (fb.div, ins.AluOp.DIV),
            (fb.mod, ins.AluOp.MOD),
            (fb.and_, ins.AluOp.AND),
            (fb.or_, ins.AluOp.OR),
            (fb.xor, ins.AluOp.XOR),
        ]:
            helper(a, b)
            alu = fb.func.blocks["entry"].instructions[-1]
            assert isinstance(alu, ins.Alu) and alu.op is op

    def test_store_global_emits_addr_then_store(self):
        fb = FunctionBuilder("f")
        fb.store_global("G", 9)
        kinds = [type(i) for i in fb.func.blocks["entry"].instructions]
        assert kinds == [ins.Addr, ins.Const, ins.Store]


class TestProgramBuilder:
    def test_build_complete_program(self):
        pb = ProgramBuilder("p")
        pb.global_("G", 2, init=(1, 2))
        mn = pb.function("main")
        v = mn.load_global("G", offset=1)
        mn.print_(v)
        mn.halt()
        prog = pb.build()
        validate_program(prog)
        assert prog.globals["G"].init == (1, 2)

    def test_annotation_passed_through(self):
        pb = ProgramBuilder("p")
        f = pb.function(
            "lk",
            params=("l",),
            annotation=SyncAnnotation(SyncKind.LOCK_ACQUIRE),
            is_library=True,
        )
        f.ret()
        assert pb.program.functions["lk"].annotation.kind is SyncKind.LOCK_ACQUIRE
        assert pb.program.functions["lk"].is_library

    def test_link_merges_library(self):
        from repro.runtime import build_library

        pb = ProgramBuilder("p")
        mn = pb.function("main")
        mn.halt()
        pb.link(build_library())
        assert "mutex_lock" in pb.program.functions
