"""Functional correctness of the IR threading library under many seeds."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.runtime import (
    BARRIER_SIZE,
    CONDVAR_SIZE,
    MUTEX_SIZE,
    SEM_SIZE,
    SPINLOCK_SIZE,
    TASLOCK_SIZE,
    build_library,
    library_function_names,
    queue_size,
)
from repro.vm import Machine, RandomScheduler

SEEDS = range(6)


def _run(pb, seed):
    prog = pb.build()
    from repro.isa import validate_program

    validate_program(prog)
    result = Machine(prog, scheduler=RandomScheduler(seed), max_steps=400_000).run()
    assert result.ok, (seed, result.deadlocked, result.timed_out)
    return result


def _counter_program(acquire: str, release: str, lock_global: str, lock_size: int):
    pb = ProgramBuilder("t")
    pb.global_("C", 1)
    pb.global_(lock_global, lock_size)
    w = pb.function("worker", params=("n",))
    i = w.reg("i")
    w.emit(ins.Const(i, 0))
    w.jmp("loop")
    w.label("loop")
    l = w.addr(lock_global)
    w.call(acquire, [l])
    a = w.addr("C")
    w.store(a, w.add(w.load(a), 1))
    w.call(release, [l])
    w.emit(ins.Mov(i, w.add(i, 1)))
    w.br(w.lt(i, "n"), "loop", "done")
    w.label("done")
    w.ret()
    mn = pb.function("main")
    n = mn.const(15)
    tids = [mn.spawn("worker", [n]) for _ in range(3)]
    for t in tids:
        mn.join(t)
    mn.print_(mn.load_global("C"))
    mn.halt()
    pb.link(build_library())
    return pb


class TestLocks:
    @pytest.mark.parametrize(
        "acquire,release,size",
        [
            ("mutex_lock", "mutex_unlock", MUTEX_SIZE),
            ("spinlock_acquire", "spinlock_release", SPINLOCK_SIZE),
            ("taslock_acquire", "taslock_release", TASLOCK_SIZE),
        ],
    )
    def test_mutual_exclusion(self, acquire, release, size):
        for seed in SEEDS:
            pb = _counter_program(acquire, release, "L", size)
            result = _run(pb, seed)
            assert result.outputs[0][1] == 45

    def test_mutex_is_fifo_fair(self):
        """Ticket mutex: a thread that took a ticket is served before a
        later arrival — total count still exact under heavy contention."""
        pb = _counter_program("mutex_lock", "mutex_unlock", "L", MUTEX_SIZE)
        for seed in range(10):
            result = _run(
                _counter_program("mutex_lock", "mutex_unlock", "L", MUTEX_SIZE), seed
            )
            assert result.outputs[0][1] == 45


class TestSemaphore:
    def test_binary_semaphore_as_mutex(self):
        for seed in SEEDS:
            result = _run_semaphore_counter(seed)
            assert result.outputs[0][1] == 30

    def test_zero_semaphore_orders_handoff(self):
        pb = ProgramBuilder("t")
        pb.global_("D", 1)
        pb.global_("S", SEM_SIZE)
        prod = pb.function("producer")
        prod.store_global("D", 7)
        s = prod.addr("S")
        prod.call("sem_post", [s])
        prod.ret()
        cons = pb.function("consumer")
        s = cons.addr("S")
        cons.call("sem_wait", [s])
        cons.print_(cons.load_global("D"))
        cons.ret()
        mn = pb.function("main")
        t1 = mn.spawn("consumer", [])
        t2 = mn.spawn("producer", [])
        mn.join(t1)
        mn.join(t2)
        mn.halt()
        pb.link(build_library())
        for seed in SEEDS:
            result = _run(pb, seed)
            assert (1, 7) in result.outputs


def _run_semaphore_counter(seed):
    pb = ProgramBuilder("t")
    pb.global_("C", 1)
    pb.global_("S", SEM_SIZE, init=(1,))
    w = pb.function("worker", params=("n",))
    i = w.reg("i")
    w.emit(ins.Const(i, 0))
    w.jmp("loop")
    w.label("loop")
    s = w.addr("S")
    w.call("sem_wait", [s])
    a = w.addr("C")
    w.store(a, w.add(w.load(a), 1))
    w.call("sem_post", [s])
    w.emit(ins.Mov(i, w.add(i, 1)))
    w.br(w.lt(i, "n"), "loop", "done")
    w.label("done")
    w.ret()
    mn = pb.function("main")
    n = mn.const(10)
    tids = [mn.spawn("worker", [n]) for _ in range(3)]
    for t in tids:
        mn.join(t)
    mn.print_(mn.load_global("C"))
    mn.halt()
    pb.link(build_library())
    return _run(pb, seed)


class TestCondvar:
    def test_predicate_handoff(self):
        for seed in SEEDS:
            pb = ProgramBuilder("t")
            pb.global_("READY", 1)
            pb.global_("D", 1)
            pb.global_("M", MUTEX_SIZE)
            pb.global_("CV", CONDVAR_SIZE)
            prod = pb.function("producer")
            prod.store_global("D", 99)
            m = prod.addr("M")
            cv = prod.addr("CV")
            prod.call("mutex_lock", [m])
            prod.store_global("READY", 1)
            prod.call("cv_broadcast", [cv])
            prod.call("mutex_unlock", [m])
            prod.ret()
            cons = pb.function("consumer")
            m = cons.addr("M")
            cv = cons.addr("CV")
            cons.call("mutex_lock", [m])
            cons.jmp("check")
            cons.label("check")
            r = cons.load_global("READY")
            cons.br(cons.ne(r, 0), "go", "wait")
            cons.label("wait")
            cons.call("cv_wait", [cv, m])
            cons.jmp("check")
            cons.label("go")
            cons.call("mutex_unlock", [m])
            cons.print_(cons.load_global("D"))
            cons.ret()
            mn = pb.function("main")
            t1 = mn.spawn("consumer", [])
            t2 = mn.spawn("producer", [])
            mn.join(t1)
            mn.join(t2)
            mn.halt()
            pb.link(build_library())
            result = _run(pb, seed)
            assert (1, 99) in result.outputs

    def test_broadcast_wakes_all_waiters(self):
        for seed in SEEDS:
            pb = ProgramBuilder("t")
            pb.global_("READY", 1)
            pb.global_("M", MUTEX_SIZE)
            pb.global_("CV", CONDVAR_SIZE)
            w = pb.function("waiter")
            m = w.addr("M")
            cv = w.addr("CV")
            w.call("mutex_lock", [m])
            w.jmp("check")
            w.label("check")
            r = w.load_global("READY")
            w.br(w.ne(r, 0), "go", "wait")
            w.label("wait")
            w.call("cv_wait", [cv, m])
            w.jmp("check")
            w.label("go")
            w.call("mutex_unlock", [m])
            w.ret(w.const(1))
            b = pb.function("broadcaster")
            b.nop(30)
            m = b.addr("M")
            cv = b.addr("CV")
            b.call("mutex_lock", [m])
            b.store_global("READY", 1)
            b.call("cv_broadcast", [cv])
            b.call("mutex_unlock", [m])
            b.ret()
            mn = pb.function("main")
            waiters = [mn.spawn("waiter", []) for _ in range(3)]
            bb = mn.spawn("broadcaster", [])
            for t in waiters:
                mn.join(t)
            mn.join(bb)
            mn.halt()
            pb.link(build_library())
            result = _run(pb, seed)
            assert all(result.thread_results[t] == 1 for t in (1, 2, 3))


class TestBarrier:
    def test_all_see_pre_barrier_writes(self):
        for seed in SEEDS:
            pb = ProgramBuilder("t")
            pb.global_("B", BARRIER_SIZE)
            pb.global_("V", 4)
            w = pb.function("worker", params=("idx",))
            base = w.addr("V")
            w.store(w.add(base, "idx"), w.add("idx", 1))
            b = w.addr("B")
            w.call("barrier_wait", [b])
            s = w.reg("s")
            w.emit(ins.Const(s, 0))
            for k in range(4):
                w.emit(ins.Mov(s, w.add(s, w.load(base, offset=k))))
            w.ret(s)
            mn = pb.function("main")
            b = mn.addr("B")
            mn.call("barrier_init", [b, mn.const(4)])
            tids = [mn.spawn("worker", [mn.const(i)]) for i in range(4)]
            for t in tids:
                mn.join(t)
            mn.halt()
            pb.link(build_library())
            result = _run(pb, seed)
            for tid in (1, 2, 3, 4):
                assert result.thread_results[tid] == 10

    def test_barrier_reusable_across_phases(self):
        for seed in range(4):
            pb = ProgramBuilder("t")
            pb.global_("B", BARRIER_SIZE)
            pb.global_("PHASES", 1)
            w = pb.function("worker")
            b = w.addr("B")
            for _ in range(3):
                w.call("barrier_wait", [b])
            w.ret()
            mn = pb.function("main")
            b = mn.addr("B")
            mn.call("barrier_init", [b, mn.const(3)])
            tids = [mn.spawn("worker", []) for _ in range(3)]
            for t in tids:
                mn.join(t)
            mn.halt()
            pb.link(build_library())
            result = _run(pb, seed)
            assert result.ok


class TestTaskQueue:
    def test_fifo_single_threaded(self):
        pb = ProgramBuilder("t")
        pb.global_("Q", queue_size(3))
        mn = pb.function("main")
        q = mn.addr("Q")
        mn.call("queue_init", [q, mn.const(3)])
        for v in (10, 20, 30):
            mn.call("queue_push", [q, mn.const(v)])
        for _ in range(3):
            mn.print_(mn.call("queue_pop", [q], want_result=True))
        mn.halt()
        pb.link(build_library())
        result = _run(pb, 0)
        assert [v for _, v in result.outputs] == [10, 20, 30]

    def test_blocking_pop_waits_for_push(self):
        for seed in SEEDS:
            pb = ProgramBuilder("t")
            pb.global_("Q", queue_size(2))
            prod = pb.function("producer")
            prod.nop(40)
            q = prod.addr("Q")
            prod.call("queue_push", [q, prod.const(5)])
            prod.ret()
            cons = pb.function("consumer")
            q = cons.addr("Q")
            cons.print_(cons.call("queue_pop", [q], want_result=True))
            cons.ret()
            mn = pb.function("main")
            q = mn.addr("Q")
            mn.call("queue_init", [q, mn.const(2)])
            t1 = mn.spawn("consumer", [])
            t2 = mn.spawn("producer", [])
            mn.join(t1)
            mn.join(t2)
            mn.halt()
            pb.link(build_library())
            result = _run(pb, seed)
            assert (1, 5) in result.outputs

    def test_bounded_push_blocks_when_full(self):
        for seed in range(4):
            pb = ProgramBuilder("t")
            pb.global_("Q", queue_size(1))
            prod = pb.function("producer")
            q = prod.addr("Q")
            for v in (1, 2, 3):
                prod.call("queue_push", [q, prod.const(v)])
            prod.ret()
            cons = pb.function("consumer")
            q = cons.addr("Q")
            s = cons.reg("s")
            cons.emit(ins.Const(s, 0))
            for _ in range(3):
                item = cons.call("queue_pop", [q], want_result=True)
                cons.emit(ins.Mov(s, cons.add(s, item)))
            cons.print_(s)
            cons.ret()
            mn = pb.function("main")
            q = mn.addr("Q")
            mn.call("queue_init", [q, mn.const(1)])
            t1 = mn.spawn("producer", [])
            t2 = mn.spawn("consumer", [])
            mn.join(t1)
            mn.join(t2)
            mn.halt()
            pb.link(build_library())
            result = _run(pb, seed)
            assert (2, 6) in result.outputs


class TestLibraryStructure:
    def test_all_declared_functions_exist(self):
        lib = build_library()
        for name in library_function_names():
            assert name in lib.functions

    def test_annotated_functions_are_library(self):
        lib = build_library()
        for func in lib.functions.values():
            if func.annotation is not None:
                assert func.is_library

    def test_queue_functions_are_user_level(self):
        """The task queue ships with the library but is *not* intercepted:
        its internal mutex/cv calls must stay visible (is_library=False)."""
        lib = build_library()
        for name in ("queue_init", "queue_push", "queue_pop"):
            assert not lib.functions[name].is_library

    def test_fresh_module_per_call(self):
        assert build_library() is not build_library()
