"""The shared workload-construction helpers."""

import pytest

from repro.analysis import SpinLoopDetector
from repro.isa import validate_program
from repro.isa.instructions import Const, Mov
from repro.vm import Machine, RandomScheduler
from repro.workloads.common import (
    counted_loop,
    emit_user_lock_acquire,
    emit_user_lock_release,
    make_condition_helper,
    new_program,
    spin_flag_2bb,
    spin_two_flags_3bb,
    spin_with_funcptr,
    spin_with_helper,
)


class TestCountedLoop:
    def test_executes_n_times(self):
        pb = new_program("t", link_library=False)
        pb.global_("N", 1)
        mn = pb.function("main")

        def body(fb, i):
            a = fb.addr("N")
            fb.store(a, fb.add(fb.load(a), 1))

        counted_loop(mn, 7, body)
        mn.print_(mn.load_global("N"))
        mn.halt()
        prog = pb.build()
        validate_program(prog)
        result = Machine(prog).run()
        assert result.outputs == [(0, 7)]

    def test_body_receives_iteration_register(self):
        pb = new_program("t", link_library=False)
        pb.global_("SUM", 1)
        mn = pb.function("main")

        def body(fb, i):
            a = fb.addr("SUM")
            fb.store(a, fb.add(fb.load(a), i))

        counted_loop(mn, 5, body)  # 0+1+2+3+4
        mn.print_(mn.load_global("SUM"))
        mn.halt()
        result = Machine(pb.build()).run()
        assert result.outputs == [(0, 10)]

    def test_zero_iterations_rejected(self):
        pb = new_program("t", link_library=False)
        mn = pb.function("main")
        with pytest.raises(AssertionError):
            counted_loop(mn, 0, lambda fb, i: None)

    def test_nested_loops(self):
        pb = new_program("t", link_library=False)
        pb.global_("C", 1)
        mn = pb.function("main")

        def outer(fb, i):
            def inner(fb2, j):
                a = fb2.addr("C")
                fb2.store(a, fb2.add(fb2.load(a), 1))

            counted_loop(fb, 3, inner)

        counted_loop(mn, 4, outer)
        mn.print_(mn.load_global("C"))
        mn.halt()
        result = Machine(pb.build()).run()
        assert result.outputs == [(0, 12)]


class TestConditionHelper:
    @pytest.mark.parametrize("blocks", [2, 3, 5, 7])
    def test_block_count_exact(self, blocks):
        pb = new_program("t", link_library=False)
        name = make_condition_helper(pb, "chk", blocks)
        assert len(pb.program.functions[name].blocks) == blocks

    def test_helper_computes_equality(self):
        pb = new_program("t", link_library=False)
        pb.global_("F", 1, init=(5,))
        make_condition_helper(pb, "chk", 4, expect=5)
        mn = pb.function("main")
        f = mn.addr("F")
        mn.print_(mn.call("chk", [f], want_result=True))
        mn.store(f, 6)
        mn.print_(mn.call("chk", [f], want_result=True))
        mn.halt()
        result = Machine(pb.build()).run()
        assert [v for _, v in result.outputs] == [1, 0]

    def test_minimum_two_blocks(self):
        pb = new_program("t", link_library=False)
        with pytest.raises(AssertionError):
            make_condition_helper(pb, "chk", 1)


class TestSpinShapes:
    def _spin_geometry(self, build, expected_eff):
        pb = new_program("t", link_library=False)
        pb.global_("FLAG", 2, init=(1, 1))
        mn = pb.function("main")
        build(pb, mn)
        mn.halt()
        prog = pb.build()
        validate_program(prog)
        spins = SpinLoopDetector(prog, max_blocks=9).detect_program()
        assert [s.effective_blocks for s in spins] == [expected_eff]
        # flag initialized to 1: the loop exits immediately; terminates.
        result = Machine(prog, max_steps=10_000).run()
        assert result.ok

    def test_2bb_geometry(self):
        self._spin_geometry(
            lambda pb, mn: spin_flag_2bb(mn, mn.addr("FLAG"), expect=1), 2
        )

    def test_3bb_geometry(self):
        self._spin_geometry(
            lambda pb, mn: spin_two_flags_3bb(mn, mn.addr("FLAG"), 0, 1), 3
        )

    def test_helper_geometry(self):
        def build(pb, mn):
            make_condition_helper(pb, "chk", 4, expect=1)
            spin_with_helper(mn, "chk", mn.addr("FLAG"))

        self._spin_geometry(build, 6)

    def test_funcptr_shape_is_invisible(self):
        pb = new_program("t", link_library=False)
        pb.global_("FLAG", 1, init=(1,))
        make_condition_helper(pb, "chk", 2, expect=1)
        mn = pb.function("main")
        spin_with_funcptr(mn, "chk", mn.addr("FLAG"))
        mn.halt()
        prog = pb.build()
        validate_program(prog)
        assert SpinLoopDetector(prog, max_blocks=9).detect_program() == []


class TestUserLock:
    def test_mutual_exclusion(self):
        pb = new_program("t", link_library=False)
        pb.global_("LK", 1)
        pb.global_("C", 1)
        w = pb.function("worker")

        def body(fb, i):
            lk = fb.addr("LK")
            emit_user_lock_acquire(fb, lk)
            a = fb.addr("C")
            fb.store(a, fb.add(fb.load(a), 1))
            emit_user_lock_release(fb, lk)

        counted_loop(w, 10, body)
        w.ret()
        mn = pb.function("main")
        t1 = mn.spawn("worker", [])
        t2 = mn.spawn("worker", [])
        mn.join(t1)
        mn.join(t2)
        mn.print_(mn.load_global("C"))
        mn.halt()
        prog = pb.build()
        for seed in range(5):
            result = Machine(prog, scheduler=RandomScheduler(seed)).run()
            assert result.outputs == [(0, 20)]

    def test_spin_then_cas_always_detected(self):
        """The helper's pre-CAS spin loop must qualify — that is the
        whole point of the spin-then-CAS shape."""
        pb = new_program("t", link_library=False)
        pb.global_("LK", 1)
        mn = pb.function("main")
        lk = mn.addr("LK")
        emit_user_lock_acquire(mn, lk)
        emit_user_lock_release(mn, lk)
        mn.halt()
        prog = pb.build()
        spins = SpinLoopDetector(prog, max_blocks=7).detect_program()
        assert len(spins) == 1
