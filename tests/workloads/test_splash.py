"""SPLASH-2 stand-ins: validity, ground truth, detector shapes."""

import pytest

from repro.detectors import ToolConfig
from repro.harness.oracle import check_workload
from repro.isa import validate_program
from repro.vm import Machine, RandomScheduler
from repro.workloads.splash import splash_workloads

from tests.conftest import detect

ALL = splash_workloads()


class TestStructure:
    def test_four_programs(self):
        assert [w.name for w in ALL] == ["fft", "lu", "radix", "barnes"]

    def test_all_declare_adhoc(self):
        assert all("adhoc" in w.sync_inventory for w in ALL)


@pytest.mark.parametrize("wl", ALL, ids=lambda w: w.name)
class TestPerProgram:
    def test_validates(self, wl):
        validate_program(wl.build())

    def test_schedule_stable(self, wl):
        verdict = check_workload(wl, seeds=range(3))
        assert verdict.verdict == "stable", verdict

    def test_lib_false_positives(self, wl):
        det, result = detect(wl.build(), ToolConfig.helgrind_lib(), seed=1)
        assert result.ok
        assert det.report.racy_contexts > 0, wl.name

    def test_spin_clean(self, wl):
        for cfg in (ToolConfig.helgrind_lib_spin(7), ToolConfig.helgrind_nolib_spin(7)):
            det, result = detect(wl.build(), cfg, seed=1)
            assert result.ok
            assert det.report.racy_contexts == 0, (wl.name, cfg.name)


class TestKernelResults:
    def test_radix_total_equals_key_count(self):
        wl = next(w for w in ALL if w.name == "radix")
        result = Machine(wl.build(), scheduler=RandomScheduler(2)).run()
        totals = {v for tid, v in result.thread_results.items() if v is not None}
        assert totals == {16}  # 4 workers x 4 keys each

    def test_lu_eliminators_agree(self):
        wl = next(w for w in ALL if w.name == "lu")
        result = Machine(wl.build(), scheduler=RandomScheduler(1)).run()
        sums = {v for tid, v in result.thread_results.items() if v is not None}
        assert len(sums) == 1  # every eliminator saw the same pivot rows

    def test_barnes_tree_sum_agrees(self):
        wl = next(w for w in ALL if w.name == "barnes")
        result = Machine(wl.build(), scheduler=RandomScheduler(3)).run()
        sums = {v for tid, v in result.thread_results.items() if v is not None}
        assert len(sums) == 1
