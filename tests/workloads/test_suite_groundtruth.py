"""Behavioural ground truth of representative suite cases per tool.

These tests pin the *mechanism* behind each suite family: which tool
configuration flags/fixes/misses which case, and why.
"""

import pytest

from repro.detectors import ToolConfig
from repro.workloads.dr_test.suite import build_suite

from tests.conftest import detect

SUITE = {w.name: w for w in build_suite()}

LIB = ToolConfig.helgrind_lib()
LIB_SPIN = ToolConfig.helgrind_lib_spin(7)
NOLIB_SPIN = ToolConfig.helgrind_nolib_spin(7)
DRD = ToolConfig.drd()


def _symbols(name, cfg):
    wl = SUITE[name]
    det, result = detect(wl.build(), cfg, seed=wl.seed, max_steps=wl.max_steps)
    assert result.ok, (name, cfg.name)
    return det.report.reported_base_symbols


class TestRaceFreeLibraryCases:
    @pytest.mark.parametrize(
        "name",
        [
            "locks_mutex_counter_t2",
            "locks_spinlock_counter_t2",
            "cv_handoff_c1",
            "barrier_phase_t4",
            "sem_mutex_t2",
            "queue_spsc_i6",
        ],
    )
    @pytest.mark.parametrize("cfg", [LIB, LIB_SPIN, NOLIB_SPIN, DRD], ids=lambda c: c.name)
    def test_clean_under_all_tools(self, name, cfg):
        assert _symbols(name, cfg) == set()


class TestAdhocCases:
    def test_lib_reports_apparent_and_sync_races(self):
        syms = _symbols("adhoc_flag_basic", LIB)
        assert "DATA" in syms and "FLAG" in syms

    def test_spin_eliminates_both(self):
        assert _symbols("adhoc_flag_basic", LIB_SPIN) == set()
        assert _symbols("adhoc_flag_basic", NOLIB_SPIN) == set()

    def test_drd_reports_adhoc(self):
        assert _symbols("adhoc_flag_basic", DRD) != set()

    def test_eff7_case_needs_wide_window(self):
        assert _symbols("adhoc7_handoff", LIB_SPIN) == set()
        assert _symbols("adhoc7_handoff", ToolConfig.helgrind_lib_spin(6)) != set()

    def test_eff3_case_caught_by_spin3(self):
        assert _symbols("adhoc_flag_basic", ToolConfig.helgrind_lib_spin(3)) == set()

    def test_user_spinlock_recovered(self):
        assert _symbols("adhoc_user_spinlock", LIB_SPIN) == set()


class TestHardCases:
    @pytest.mark.parametrize(
        "name",
        [
            "hard_funcptr",
            "hard_oversized_eff9",
            "hard_impure_poll",
            "hard_obscure_queue",
            "hard_deep_chain",
            "hard_counted_timeout",
        ],
    )
    def test_residual_false_positives_with_spin(self, name):
        """These constructs defeat the instrumentation phase."""
        assert _symbols(name, LIB_SPIN) != set()
        assert _symbols(name, ToolConfig.helgrind_lib_spin(8)) != set()


class TestNolibSpecifics:
    def test_taslock_unrecoverable(self):
        """The paper's 'only one false positive more' case."""
        assert _symbols("locks_taslock_t2", LIB) == set()
        assert _symbols("locks_taslock_t2", LIB_SPIN) == set()
        assert _symbols("locks_taslock_t2", NOLIB_SPIN) != set()

    def test_mutex_fully_recovered(self):
        assert _symbols("locks_mutex_counter_t4", NOLIB_SPIN) == set()

    def test_barrier_fully_recovered(self):
        assert _symbols("barrier_phase_t8", NOLIB_SPIN) == set()

    def test_condvar_fully_recovered(self):
        assert _symbols("cv_pingpong_r2", NOLIB_SPIN) == set()

    def test_semaphore_fully_recovered(self):
        assert _symbols("sem_mutex_t4", NOLIB_SPIN) == set()


class TestRacyCases:
    def test_plain_race_found_by_all(self):
        for cfg in (LIB, LIB_SPIN, NOLIB_SPIN, DRD):
            assert "COUNTER" in _symbols("racy_counter_t2", cfg), cfg.name

    def test_spin_edge_does_not_hide_late_write(self):
        syms = _symbols("racy_adhoc_after", LIB_SPIN)
        assert "LATE" in syms
        assert "EARLY" not in syms  # properly ordered part stays clean

    def test_lock_masked_race_splits_hybrid_from_drd(self):
        assert "X" in _symbols("racy_lockmask_basic", LIB)
        assert "X" in _symbols("racy_lockmask_basic", LIB_SPIN)
        assert "X" not in _symbols("racy_lockmask_basic", DRD)

    def test_sem_masked_race_missed_by_all(self):
        for cfg in (LIB, LIB_SPIN, NOLIB_SPIN, DRD):
            assert "X" not in _symbols("racy_semmask_basic", cfg), cfg.name

    def test_coarse_cv_false_negative_removed_by_spin(self):
        """The paper's removed false negative (slide 24: 8 -> 7 misses)."""
        assert "X" not in _symbols("racy_coarse_cv_fn", LIB)  # hidden
        assert "X" in _symbols("racy_coarse_cv_fn", LIB_SPIN)  # found
        assert "X" in _symbols("racy_coarse_cv_fn", DRD)  # found
