"""Ground-truth oracle: suite declarations hold without any detector."""

import pytest

from repro.harness.oracle import check_workload
from repro.workloads.dr_test.suite import build_suite

SUITE = {w.name: w for w in build_suite()}

#: race-free representatives from every family — must be schedule-stable
RACE_FREE = [
    "locks_mutex_counter_t4",
    "locks_spinlock_counter_t2",
    "locks_taslock_t2",
    "cv_handoff_c1",
    "cv_pingpong_r2",
    "barrier_phase_t4",
    "sem_mutex_t2",
    "sem_rendezvous",
    "queue_spsc_i6",
    "adhoc_flag_basic",
    "adhoc_handshake",
    "adhoc_user_spinlock",
    "adhoc7_handoff",
    "adhoc7_barrier3",
    "adhoc7_ring",
    "hard_funcptr",
    "hard_impure_poll",
    "hard_counted_timeout",
]

#: races that must visibly manifest across adversarial schedules
MANIFEST = [
    "racy_counter_t2",
    "racy_counter_t4",
    "racy_read_write",
    "racy_adhoc_queue",
]


@pytest.mark.parametrize("name", RACE_FREE)
def test_race_free_cases_are_schedule_stable(name):
    verdict = check_workload(SUITE[name], seeds=range(6))
    assert verdict.verdict == "stable", (name, verdict)


@pytest.mark.parametrize("name", MANIFEST)
def test_plain_races_manifest_under_adversarial_schedules(name):
    verdict = check_workload(SUITE[name], seeds=range(10))
    assert verdict.manifest, (name, verdict)


def test_masked_races_manifest_with_enough_schedules():
    """The lock-masked race is real: some schedule interleaves the
    unprotected accesses visibly (the write-write on X reorders)."""
    verdict = check_workload(SUITE["racy_lockmask_basic"], seeds=range(30))
    # The final X value is 2 in one order and also 2 in the other (both
    # increments land), so manifestation needs the lost-update window;
    # accept either manifest or stable, but the run must never hang.
    assert verdict.verdict in ("manifest", "stable")


def test_verdict_fields():
    verdict = check_workload(SUITE["racy_counter_t2"], seeds=range(3))
    assert verdict.workload == "racy_counter_t2"
    assert verdict.schedules_tried == 6  # adversarial + random per seed
    assert verdict.distinct_outcomes >= 1
