"""PARSEC stand-ins: structure, validity, and per-program shape."""

import pytest

from repro.detectors import ToolConfig
from repro.isa import validate_program
from repro.workloads.parsec.registry import (
    WITH_ADHOC,
    WITHOUT_ADHOC,
    parsec_workload,
    parsec_workloads,
    program_metadata,
)

from tests.conftest import detect

ALL = parsec_workloads()


class TestRegistry:
    def test_thirteen_programs(self):
        assert len(ALL) == 13

    def test_paper_partition(self):
        names = {w.name for w in ALL}
        assert set(WITHOUT_ADHOC) | set(WITH_ADHOC) == names
        assert len(WITHOUT_ADHOC) == 5 and len(WITH_ADHOC) == 8

    def test_lookup_by_name(self):
        assert parsec_workload("dedup").name == "dedup"
        with pytest.raises(KeyError):
            parsec_workload("nope")

    def test_metadata_matches_paper_models(self):
        meta = program_metadata()
        assert meta["freqmine"]["model"] == "OpenMP"
        assert meta["vips"]["model"] == "GLIB"
        assert meta["blackscholes"]["model"] == "POSIX"
        assert meta["blackscholes"]["barriers"] and not meta["blackscholes"]["adhoc"]
        assert meta["streamcluster"]["barriers"] and meta["streamcluster"]["adhoc"]

    def test_adhoc_flag_matches_partition(self):
        meta = program_metadata()
        for name in WITH_ADHOC:
            assert meta[name]["adhoc"], name
        for name in WITHOUT_ADHOC:
            assert not meta[name]["adhoc"], name


@pytest.mark.parametrize("wl", ALL, ids=lambda w: w.name)
def test_all_programs_validate(wl):
    validate_program(wl.build())


@pytest.mark.parametrize("wl", ALL, ids=lambda w: w.name)
def test_all_programs_terminate(wl):
    _, result = detect(
        wl.build(), ToolConfig.helgrind_lib_spin(7), seed=2, max_steps=wl.max_steps
    )
    assert result.ok


class TestShapes:
    def _contexts(self, name, cfg, seed=1):
        wl = parsec_workload(name)
        det, result = detect(wl.build(), cfg, seed=seed, max_steps=wl.max_steps)
        assert result.ok
        return det.report.racy_contexts

    @pytest.mark.parametrize("name", WITHOUT_ADHOC[:4])
    def test_clean_programs_have_zero_contexts(self, name):
        for cfg in ToolConfig.paper_tools(7):
            assert self._contexts(name, cfg) == 0, (name, cfg.name)

    def test_freqmine_unknown_library(self):
        assert self._contexts("freqmine", ToolConfig.helgrind_lib()) > 100
        assert self._contexts("freqmine", ToolConfig.helgrind_lib_spin(7)) <= 3
        assert self._contexts("freqmine", ToolConfig.drd()) == 1000

    @pytest.mark.parametrize("name", ["vips", "facesim", "raytrace"])
    def test_detectable_adhoc_fully_fixed(self, name):
        assert self._contexts(name, ToolConfig.helgrind_lib()) > 30
        assert self._contexts(name, ToolConfig.helgrind_lib_spin(7)) == 0
        assert self._contexts(name, ToolConfig.helgrind_nolib_spin(7)) == 0

    def test_bodytrack_funcptr_residual_and_nolib_gap(self):
        lib_spin = self._contexts("bodytrack", ToolConfig.helgrind_lib_spin(7))
        nolib = self._contexts("bodytrack", ToolConfig.helgrind_nolib_spin(7))
        assert 0 < lib_spin < 10
        assert nolib > 3 * lib_spin  # TAS-locked data lost in nolib

    def test_dedup_hybrid_vs_drd_inversion(self):
        """dedup: hybrid-lib explodes, DRD is (nearly) clean."""
        assert self._contexts("dedup", ToolConfig.helgrind_lib()) == 1000
        assert self._contexts("dedup", ToolConfig.helgrind_lib_spin(7)) == 0
        assert self._contexts("dedup", ToolConfig.drd()) <= 1

    def test_streamcluster_coarse_heuristic(self):
        assert self._contexts("streamcluster", ToolConfig.helgrind_lib()) <= 8
        assert self._contexts("streamcluster", ToolConfig.drd()) == 1000
        assert self._contexts("streamcluster", ToolConfig.helgrind_lib_spin(7)) == 0

    def test_x264_cap_hit(self):
        assert self._contexts("x264", ToolConfig.helgrind_lib()) == 1000
        assert self._contexts("x264", ToolConfig.helgrind_lib_spin(7)) < 30
