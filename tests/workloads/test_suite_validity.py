"""Structural validity of the 120-case suite."""

import pytest

from repro.isa import validate_program
from repro.workloads.dr_test.suite import SUITE_SIZE, build_suite

SUITE = build_suite()


class TestSuiteShape:
    def test_exactly_120_cases(self):
        assert len(SUITE) == SUITE_SIZE == 120

    def test_unique_names(self):
        names = [w.name for w in SUITE]
        assert len(names) == len(set(names))

    def test_thread_counts_in_paper_range(self):
        assert all(2 <= w.threads <= 16 for w in SUITE)

    def test_categories_present(self):
        cats = {w.category for w in SUITE}
        assert {
            "locks",
            "condvars",
            "barriers",
            "semaphores",
            "queues",
            "adhoc",
            "hard",
        } <= cats
        assert any(c.startswith("racy") for c in cats)

    def test_racy_and_racefree_mix(self):
        racy = sum(1 for w in SUITE if w.is_racy)
        assert 20 <= racy <= 40
        assert 80 <= len(SUITE) - racy <= 100

    def test_descriptions_nonempty(self):
        assert all(w.description for w in SUITE)


@pytest.mark.parametrize("wl", SUITE, ids=lambda w: w.name)
def test_every_case_validates(wl):
    validate_program(wl.build())


def test_builds_are_fresh_programs():
    wl = SUITE[0]
    assert wl.build() is not wl.build()
