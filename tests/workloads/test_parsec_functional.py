"""Functional determinism of the PARSEC stand-ins.

The race-free programs must compute the *same observable results* under
every schedule — their kernels are real computations, not stubs, and
their synchronization actually works.  (This is the per-program
counterpart of the suite-wide oracle sweep.)
"""

import pytest

from repro.vm import AdversarialScheduler, Machine, RandomScheduler
from repro.workloads.parsec.registry import parsec_workload, parsec_workloads


def _observable(result):
    return (
        tuple(sorted(result.outputs)),
        tuple(sorted((k, v) for k, v in result.thread_results.items())),
    )


@pytest.mark.parametrize("wl", parsec_workloads(), ids=lambda w: w.name)
def test_observable_results_schedule_independent(wl):
    outcomes = set()
    for seed in range(3):
        for scheduler in (RandomScheduler(seed), AdversarialScheduler(seed)):
            result = Machine(
                wl.build(), scheduler=scheduler, max_steps=wl.max_steps
            ).run()
            assert result.ok, (wl.name, seed)
            outcomes.add(_observable(result))
    assert len(outcomes) == 1, (wl.name, len(outcomes))


class TestKernelsCompute:
    def test_swaptions_transforms_all_slices(self):
        wl = parsec_workload("swaptions")
        machine = Machine(wl.build(), scheduler=RandomScheduler(1))
        result = machine.run()
        base = machine.memory.global_base("SWAPTIONS")
        values = [result.final_memory[base + i] for i in range(40)]
        # The Monte-Carlo-ish recurrence moves every cell off its init.
        assert values != list(range(1, 41))
        assert all(0 <= v < 104729 for v in values)

    def test_blackscholes_prices_partitioned(self):
        wl = parsec_workload("blackscholes")
        machine = Machine(wl.build(), scheduler=RandomScheduler(1))
        result = machine.run()
        base = machine.memory.global_base("GREEKS")
        greeks = [result.final_memory[base + i] for i in range(32)]
        assert all(v != 0 for v in greeks[1:])  # every slot computed

    def test_vips_workers_agree_on_tile_sum(self):
        wl = parsec_workload("vips")
        result = Machine(wl.build(), scheduler=RandomScheduler(2), max_steps=wl.max_steps).run()
        worker_sums = {
            v for tid, v in result.thread_results.items() if tid in (1, 2, 3, 4)
        }
        assert len(worker_sums) == 1  # all read the same published tiles

    def test_dedup_consumers_agree_on_bucket_sum(self):
        wl = parsec_workload("dedup")
        result = Machine(wl.build(), scheduler=RandomScheduler(3), max_steps=wl.max_steps).run()
        sums = {v for tid, v in result.thread_results.items() if tid in (1, 2, 3)}
        assert len(sums) == 1

    def test_streamcluster_workers_include_late_scalars(self):
        wl = parsec_workload("streamcluster")
        result = Machine(wl.build(), scheduler=RandomScheduler(1), max_steps=wl.max_steps).run()
        worker_vals = {
            v for tid, v in result.thread_results.items() if tid in (1, 2, 3, 4)
        }
        assert len(worker_vals) == 1
        assert worker_vals.pop() > 500  # centers sum + the LATE scalars
