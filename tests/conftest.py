"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.analysis import instrument_program
from repro.detectors import RaceDetector, ToolConfig
from repro.isa import ProgramBuilder, validate_program
from repro.isa.program import Program
from repro.runtime import build_library
from repro.vm import Machine, RandomScheduler


@pytest.fixture
def library() -> Program:
    return build_library()


def run_program(
    program: Program,
    seed: int = 1,
    max_steps: int = 300_000,
    listener=None,
    instrumentation=None,
):
    """Validate and run a program; returns (machine, result)."""
    validate_program(program)
    machine = Machine(
        program,
        scheduler=RandomScheduler(seed),
        listener=listener,
        instrumentation=instrumentation,
        max_steps=max_steps,
    )
    result = machine.run()
    return machine, result


def detect(
    program: Program,
    config: ToolConfig,
    seed: int = 1,
    max_steps: int = 300_000,
):
    """Run a program under a detector config; returns (detector, result)."""
    validate_program(program)
    imap = None
    if config.spin:
        imap = instrument_program(
            program, max_blocks=config.spin_max_blocks, inline_depth=config.inline_depth
        )
    detector = RaceDetector(config)
    machine = Machine(
        program,
        scheduler=RandomScheduler(seed),
        listener=detector,
        instrumentation=imap,
        max_steps=max_steps,
    )
    detector.algorithm.symbolize = machine.memory.symbols.resolve
    result = machine.run()
    return detector, result


def flag_handoff_program() -> Program:
    """The paper's motivating example (slide 15): DATA/FLAG handoff."""
    pb = ProgramBuilder("flag_handoff")
    pb.global_("FLAG", 1)
    pb.global_("DATA", 1)

    prod = pb.function("producer")
    d = prod.addr("DATA")
    prod.store(d, prod.add(prod.load(d), 1))
    prod.store_global("FLAG", 1)
    prod.ret()

    cons = pb.function("consumer")
    f = cons.addr("FLAG")
    cons.jmp("spin")
    cons.label("spin")
    v = cons.load(f)
    z = cons.eq(v, 0)
    cons.br(z, "body", "after")
    cons.label("body")
    cons.yield_()
    cons.jmp("spin")
    cons.label("after")
    d = cons.addr("DATA")
    cons.store(d, cons.sub(cons.load(d), 1))
    cons.ret()

    mn = pb.function("main")
    a = mn.spawn("producer", [])
    b = mn.spawn("consumer", [])
    mn.join(a)
    mn.join(b)
    mn.halt()
    pb.link(build_library())
    return pb.build()
