"""Graceful degradation: detectors must finalize truncated event streams.

A faulted or clamped run hands the detector a prefix of a valid stream —
cut mid-critical-section (locks still held), mid-marked-loop (spin
entered, never exited), or mid-condvar-wait.  ``finalize(partial=True)``
must always return a report and never raise, for every algorithm family
(hybrid, pure-hb, lockset) and for the ad-hoc and condvar companions.
"""

import pytest

from repro.analysis import instrument_program
from repro.detectors import RaceDetector, ToolConfig
from repro.vm import (
    LibExit,
    Machine,
    MarkedCondRead,
    MarkedLoopEnter,
    RandomScheduler,
)
from repro.vm.faults import ClampSteps, FaultPlan
from repro.workloads import chaos_workloads

from tests.conftest import flag_handoff_program

CONFIGS = [
    ToolConfig.helgrind_lib(),         # hybrid
    ToolConfig.helgrind_lib_spin(7),   # hybrid + ad-hoc engine
    ToolConfig.helgrind_nolib_spin(7),
    ToolConfig.drd(),                  # pure happens-before
    ToolConfig.eraser(),               # lockset
]


def _chaos_program(name):
    by_name = {wl.name: wl for wl in chaos_workloads()}
    return by_name[name].fresh_program()


def _stream(program, config, seed=1, max_steps=8_000):
    """The (possibly budget-truncated) stream as ``config`` observes it."""
    imap = None
    if config.spin:
        imap = instrument_program(
            program,
            max_blocks=config.spin_max_blocks,
            inline_depth=config.inline_depth,
        )
    events = []
    machine = Machine(
        program,
        scheduler=RandomScheduler(seed),
        listener=events.append,
        instrumentation=imap,
        max_steps=max_steps,
    )
    machine.run()
    return events


def _cut_points(events):
    """Prefix lengths that truncate at interesting protocol boundaries."""
    cuts = {1, len(events) // 3, len(events) // 2, len(events) - 1}
    for marker in (LibExit, MarkedLoopEnter, MarkedCondRead):
        for i, e in enumerate(events):
            if isinstance(e, marker):
                cuts.add(i + 1)  # right after: mid-CS / mid-loop / mid-read
                break
    return sorted(c for c in cuts if 0 < c < len(events))


def _finalize_prefix(events, config, cut):
    detector = RaceDetector(config)
    for e in events[:cut]:
        detector(e)
    return detector, detector.finalize(partial=True)


PROGRAMS = ["chaos_lock_pair", "chaos_cv_lost_signal", "chaos_flag_handoff"]


class TestTruncatedStreams:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("name", PROGRAMS)
    def test_every_cut_finalizes_without_raising(self, config, name):
        events = _stream(_chaos_program(name), config)
        assert events
        for cut in _cut_points(events):
            _, report = _finalize_prefix(events, config, cut)
            assert report.partial
            assert "(partial stream)" in report.summary()

    def test_mid_marked_loop_cut_reaches_adhoc_engine(self):
        config = ToolConfig.helgrind_lib_spin(7)
        events = _stream(flag_handoff_program(), config)
        cut = next(
            i + 1 for i, e in enumerate(events) if isinstance(e, MarkedCondRead)
        )
        detector, report = _finalize_prefix(events, config, cut)
        assert detector.adhoc is not None
        assert report.partial

    def test_mid_critical_section_cut_leaves_locks_held(self):
        config = ToolConfig.helgrind_lib()
        events = _stream(_chaos_program("chaos_lock_pair"), config)
        cut = next(i + 1 for i, e in enumerate(events) if isinstance(e, LibExit))
        detector, report = _finalize_prefix(events, config, cut)
        # the stream ended inside the critical section: a lock is still
        # held, and finalize must cope instead of asserting balance
        assert any(held for held in detector.algorithm._held.values())
        assert report.partial


class TestFinalizeContract:
    def test_idempotent(self):
        config = ToolConfig.helgrind_lib_spin(7)
        events = _stream(flag_handoff_program(), config)
        detector, report = _finalize_prefix(events, config, len(events) // 2)
        again = detector.finalize(partial=True)
        assert again is report
        assert again.notes == report.notes

    def test_complete_stream_is_not_partial(self):
        config = ToolConfig.helgrind_lib()
        events = _stream(flag_handoff_program(), config)
        detector = RaceDetector(config)
        for e in events:
            detector(e)
        report = detector.finalize()
        assert not report.partial
        assert "(partial stream)" not in report.summary()

    def test_empty_stream_finalizes(self):
        for config in CONFIGS:
            report = RaceDetector(config).finalize(partial=True)
            assert report.partial

    def test_clamped_live_run_finalizes(self):
        # End-to-end: the detector listens to a machine whose budget is
        # clamped mid-execution, exactly as the harness drives it.
        config = ToolConfig.helgrind_lib_spin(7)
        program = _chaos_program("chaos_lock_pair")
        imap = instrument_program(
            program,
            max_blocks=config.spin_max_blocks,
            inline_depth=config.inline_depth,
        )
        detector = RaceDetector(config)
        machine = Machine(
            program,
            scheduler=RandomScheduler(1),
            listener=detector,
            instrumentation=imap,
            faults=FaultPlan(faults=(ClampSteps(max_steps=60),)),
        )
        result = machine.run()
        assert result.timed_out
        report = detector.finalize(partial=not result.ok)
        assert report.partial
