"""Differential oracle: the fast pipeline must not change a single report.

The epoch fast path and the batched event delivery are *pure*
optimizations — every (workload, tool, seed) triple must produce a
byte-identical :class:`~repro.detectors.reports.Report` (same warnings
in the same order, same contexts, same notes, same partial flag) with
them on or off.  :meth:`Report.fingerprint` canonicalizes exactly that
surface; these tests sweep it across the whole 120-case dr_test suite
and the 8-case chaos suite, for lib/nolib interception crossed with the
spin feature on/off.
"""

from dataclasses import replace

import pytest

from repro.detectors import ToolConfig
from repro.harness.perf import fast_variant, legacy_variant
from repro.harness.registry import resolve_workload
from repro.harness.runner import run_workload
from repro.workloads import build_suite
from repro.workloads.dr_test.faults import chaos_cases

# lib/nolib crossed with spin off/on.  The nolib+nospin corner is not a
# paper configuration (library synchronization becomes invisible without
# the spin feature) but the two pipelines must still agree on it.
CONFIGS = (
    ToolConfig.helgrind_lib(),
    ToolConfig.helgrind_lib_spin(7),
    replace(ToolConfig.helgrind_nolib_spin(7), spin=False, name="Helgrind+ nolib"),
    ToolConfig.helgrind_nolib_spin(7),
)


def _mismatch(workload, config, fast, legacy):
    return (
        f"{workload} under {config.name}: fast pipeline changed the report\n"
        f"  fast:   {fast.report.fingerprint()}\n"
        f"  legacy: {legacy.report.fingerprint()}"
    )


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_suite_reports_identical(config):
    mismatches = []
    for wl in build_suite():
        fast = run_workload(wl, fast_variant(config))
        legacy = run_workload(wl, legacy_variant(config))
        if fast.report.fingerprint() != legacy.report.fingerprint():
            mismatches.append(_mismatch(wl.name, config, fast, legacy))
    assert not mismatches, "\n".join(mismatches)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_chaos_reports_identical(config):
    """Fault-injected runs (dropped stores, stuck threads, partial
    reports from watchdog kills) must also be pipeline-invariant."""
    mismatches = []
    for case in chaos_cases():
        wl = resolve_workload(case.workload)
        runs = {}
        for label, variant in (("fast", fast_variant), ("legacy", legacy_variant)):
            runs[label] = run_workload(
                wl,
                variant(config),
                seed=case.seed,
                fault_plan=case.plan,
                livelock_bound=case.livelock_bound,
            )
        if runs["fast"].report.fingerprint() != runs["legacy"].report.fingerprint():
            mismatches.append(
                _mismatch(case.name, config, runs["fast"], runs["legacy"])
            )
    assert not mismatches, "\n".join(mismatches)


def test_fast_variants_round_trip():
    base = ToolConfig.helgrind_lib_spin(7)
    legacy = legacy_variant(base)
    assert not legacy.epoch_fast_path and not legacy.batched
    fast = fast_variant(legacy)
    assert fast == base
