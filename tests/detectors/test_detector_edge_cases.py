"""Detector corner cases: interception nuances, DRD granularity, caps."""

from repro.detectors import RaceDetector, ToolConfig
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Const, Mov
from repro.runtime import CONDVAR_SIZE, MUTEX_SIZE, SEM_SIZE, build_library
from repro.workloads.common import counted_loop, finish_main, new_program

from tests.conftest import detect


def _array_race_program(words: int):
    pb = new_program("arr")
    pb.global_("ARR", words)
    w = pb.function("writer")
    base = w.addr("ARR")
    for k in range(words):
        w.store(base, k, offset=k)
    w.ret()
    r = pb.function("reader")
    base = r.addr("ARR")
    s = r.reg("s")
    r.emit(Const(s, 0))
    for k in range(words):
        r.emit(Mov(s, r.add(s, r.load(base, offset=k))))
    r.ret(s)
    mn = pb.function("main")
    tids = [mn.spawn("writer", []), mn.spawn("reader", [])]
    finish_main(mn, tids)
    return pb.build()


class TestGranularity:
    def test_helgrind_collapses_array_to_symbol(self):
        det, _ = detect(_array_race_program(12), ToolConfig.helgrind_lib(), seed=2)
        # 12 racy elements, each with its own site pair -> 12 contexts at
        # symbol granularity (sites differ), but all on one base symbol.
        assert det.report.reported_base_symbols == {"ARR"}

    def test_drd_counts_each_element(self):
        hel, _ = detect(_array_race_program(12), ToolConfig.helgrind_lib(), seed=2)
        drd, _ = detect(_array_race_program(12), ToolConfig.drd(), seed=2)
        assert drd.report.racy_contexts >= hel.report.racy_contexts

    def test_cap_respected_on_huge_conflict(self):
        det, _ = detect(_array_race_program(40), ToolConfig.drd(), seed=2)
        assert det.report.racy_contexts <= 1000


class TestInterceptionNuances:
    def test_cv_wait_reacquires_lock_in_lockset(self):
        """After cv_wait returns, the waiter holds the mutex again —
        accesses in the re-entered critical section must be excused."""
        pb = new_program("cvw")
        pb.global_("READY", 1)
        pb.global_("SHARED", 1)
        pb.global_("M", MUTEX_SIZE)
        pb.global_("CV", CONDVAR_SIZE)
        prod = pb.function("producer")
        m = prod.addr("M")
        cv = prod.addr("CV")
        prod.call("mutex_lock", [m])
        s = prod.addr("SHARED")
        prod.store(s, 1)
        prod.store_global("READY", 1)
        prod.call("cv_broadcast", [cv])
        prod.call("mutex_unlock", [m])
        prod.ret()
        cons = pb.function("consumer")
        m = cons.addr("M")
        cv = cons.addr("CV")
        cons.call("mutex_lock", [m])
        cons.jmp("check")
        cons.label("check")
        rdy = cons.load_global("READY")
        cons.br(cons.ne(rdy, 0), "go", "wait")
        cons.label("wait")
        cons.call("cv_wait", [cv, m])
        cons.jmp("check")
        cons.label("go")
        s = cons.addr("SHARED")
        cons.store(s, cons.add(cons.load(s), 1))  # inside the CS
        cons.call("mutex_unlock", [m])
        cons.ret()
        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        for seed in range(4):
            det, result = detect(pb.build(), ToolConfig.helgrind_lib(), seed=seed)
            assert result.ok
            assert det.report.racy_contexts == 0, seed

    def test_sem_multi_token_pool(self):
        """A 2-token semaphore lets two holders run concurrently; their
        accesses to disjoint slots are fine, and the conservative
        join-all-posts hb never creates false ordering *reports*."""
        pb = new_program("sem2")
        pb.global_("S", SEM_SIZE, init=(2,))
        pb.global_("SLOTS", 2)
        w = pb.function("worker", params=("idx",))
        s = w.addr("S")
        w.call("sem_wait", [s])
        base = w.addr("SLOTS")
        w.store(w.add(base, "idx"), 1)
        w.call("sem_post", [s])
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", [mn.const(i)]) for i in range(2)]
        finish_main(mn, tids)
        det, result = detect(pb.build(), ToolConfig.helgrind_lib(), seed=1)
        assert result.ok and det.report.racy_contexts == 0

    def test_barrier_init_traffic_hidden_in_lib_mode(self):
        pb = new_program("bi")
        from repro.runtime import BARRIER_SIZE

        pb.global_("B", BARRIER_SIZE)
        mn = pb.function("main")
        b = mn.addr("B")
        mn.call("barrier_init", [b, mn.const(1)])
        mn.call("barrier_wait", [b])
        mn.halt()
        det, result = detect(pb.build(), ToolConfig.helgrind_lib(), seed=1)
        assert result.ok
        assert len(det.algorithm.shadow) == 0  # all traffic was internal


class TestSymbolizeDefaults:
    def test_detector_auto_wires_symbolizer_on_attach(self):
        """Machine construction wires the detector to the symbol table
        (the old manual ``algorithm.symbolize = ...`` hack is folded in)."""
        program = _array_race_program(2)
        from repro.vm import Machine, RandomScheduler

        det = RaceDetector(ToolConfig.helgrind_lib())
        Machine(program, scheduler=RandomScheduler(2), listener=det).run()
        if det.report.warnings:
            assert not det.report.warnings[0].symbol.startswith("0x")

    def test_unattached_detector_falls_back_to_hex(self):
        det = RaceDetector(ToolConfig.helgrind_lib())
        assert det.algorithm.symbolize(0x1234) == "0x1234"

    def test_explicit_symbolizer_survives_attach(self):
        program = _array_race_program(2)
        from repro.vm import Machine, RandomScheduler

        det = RaceDetector(ToolConfig.helgrind_lib(), symbolize=lambda a: f"<{a}>")
        Machine(program, scheduler=RandomScheduler(2), listener=det).run()
        if det.report.warnings:
            assert det.report.warnings[0].symbol.startswith("<")


class TestEventsDropWhenIrrelevant:
    def test_marked_events_ignored_without_spin(self):
        """A spin-off detector fed marked events must not crash or
        change verdicts (the trace replayer relies on this)."""
        from repro.trace import record_trace, replay_trace

        from tests.conftest import flag_handoff_program

        trace = record_trace(flag_handoff_program(), seed=1)
        det = replay_trace(trace, ToolConfig.helgrind_lib())
        assert det.adhoc is None
        assert det.report.racy_contexts > 0  # lib still FPs, as live
