"""Core algorithm machinery: hb checks, locksets, suppression, long-run."""

from repro.isa.program import CodeLocation
from repro.detectors.base import VectorClockAlgorithm
from repro.detectors.happensbefore import PureHappensBeforeAlgorithm
from repro.detectors.hybrid import HybridAlgorithm
from repro.detectors.reports import Report

L = lambda i: CodeLocation("f", "b", i)


def _hb(suppressor=None, **kw):
    return PureHappensBeforeAlgorithm(Report("hb"), suppressor=suppressor, **kw)


def _hy(**kw):
    return HybridAlgorithm(Report("hy"), **kw)


class TestHappensBeforeCore:
    def test_concurrent_write_read_reported(self):
        a = _hb()
        a.write(1, 0x10, 5, L(0), False)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 1
        assert a.report.warnings[0].kind == "write-read"

    def test_spawn_orders_parent_writes(self):
        a = _hb()
        a.write(0, 0x10, 5, L(0), False)
        a.spawn(0, 1)
        a.read(1, 0x10, L(1), False)
        assert a.report.racy_contexts == 0

    def test_join_orders_child_writes(self):
        a = _hb()
        a.spawn(0, 1)
        a.write(1, 0x10, 5, L(0), False)
        a.join(0, 1)
        a.read(0, 0x10, L(1), False)
        assert a.report.racy_contexts == 0

    def test_concurrent_write_write_reported(self):
        a = _hb()
        a.write(1, 0x10, 1, L(0), False)
        a.write(2, 0x10, 2, L(1), False)
        assert a.report.warnings[0].kind == "write-write"

    def test_read_then_concurrent_write_reported(self):
        a = _hb()
        a.spawn(0, 1)
        a.spawn(0, 2)
        a.read(1, 0x10, L(0), False)
        a.write(2, 0x10, 9, L(1), False)
        kinds = {w.kind for w in a.report.warnings}
        assert "read-write" in kinds

    def test_atomic_atomic_pair_not_reported(self):
        a = _hb()
        a.write(1, 0x10, 1, L(0), True)
        a.write(2, 0x10, 2, L(1), True)
        a.read(2, 0x10, L(2), True)
        assert a.report.racy_contexts == 0

    def test_plain_vs_atomic_reported(self):
        a = _hb()
        a.write(1, 0x10, 1, L(0), True)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 1

    def test_same_thread_never_races(self):
        a = _hb()
        a.write(1, 0x10, 1, L(0), False)
        a.read(1, 0x10, L(1), False)
        a.write(1, 0x10, 2, L(2), False)
        assert a.report.racy_contexts == 0

    def test_lock_hb_orders_in_pure_hb(self):
        a = _hb()
        a.acquire_lock(1, 0x99)
        a.write(1, 0x10, 1, L(0), False)
        a.release_lock(1, 0x99)
        a.acquire_lock(2, 0x99)
        a.read(2, 0x10, L(1), False)
        a.release_lock(2, 0x99)
        assert a.report.racy_contexts == 0

    def test_per_write_tick_bounds_adhoc_edges(self):
        """A write after the counterpart write must not be covered by an
        edge taken from the counterpart's snapshot."""
        a = _hb()
        a.write(1, 0x10, 7, L(0), False)  # counterpart write
        rec = a.last_write(0x10)
        a.write(1, 0x20, 9, L(1), False)  # later write, same thread
        a.adhoc_acquire(2, rec.vc)
        a.read(2, 0x20, L(2), False)  # must still race
        assert a.report.racy_contexts == 1
        a2 = _hb()
        a2.write(1, 0x20, 9, L(1), False)  # earlier write
        a2.write(1, 0x10, 7, L(0), False)  # counterpart write
        rec = a2.last_write(0x10)
        a2.adhoc_acquire(2, rec.vc)
        a2.read(2, 0x20, L(2), False)  # covered by the edge
        assert a2.report.racy_contexts == 0


class TestSyncOperations:
    def test_signal_wait_edge(self):
        a = _hb()
        a.write(1, 0x10, 5, L(0), False)
        a.signal(1, 0x77)
        a.wait_return(2, 0x77)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 0

    def test_wait_without_signal_no_edge(self):
        a = _hb()
        a.write(1, 0x10, 5, L(0), False)
        a.wait_return(2, 0x77)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 1

    def test_sem_post_wait_edge(self):
        a = _hb()
        a.write(1, 0x10, 5, L(0), False)
        a.sem_post(1, 0x55)
        a.sem_wait_return(2, 0x55)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 0

    def test_barrier_orders_all_participants(self):
        a = _hb()
        a.write(1, 0x10, 5, L(0), False)
        a.write(2, 0x20, 6, L(1), False)
        for t in (1, 2, 3):
            a.barrier_enter(t, 0x44)
        for t in (1, 2, 3):
            a.barrier_leave(t, 0x44)
        a.read(3, 0x10, L(2), False)
        a.read(3, 0x20, L(3), False)
        assert a.report.racy_contexts == 0

    def test_barrier_episode_reset(self):
        a = _hb()
        for t in (1, 2):
            a.barrier_enter(t, 0x44)
        for t in (1, 2):
            a.barrier_leave(t, 0x44)
        # Second episode: a write before it is ordered; but a write by 1
        # after its own leave is NOT ordered for 2's post-barrier read
        # until the next barrier.
        a.write(1, 0x10, 5, L(0), False)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 1

    def test_coarse_cv_pool_hides_unrelated_signal(self):
        a = _hb(coarse_cv=True)
        a.write(1, 0x10, 5, L(0), False)
        a.signal(1, 0xAA)  # condvar A
        a.signal(3, 0xBB)  # condvar B
        a.wait_return(2, 0xBB)  # waited on B, but pool joins A's too
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 0

    def test_precise_cv_does_not_join_unrelated(self):
        a = _hb(coarse_cv=False)
        a.write(1, 0x10, 5, L(0), False)
        a.signal(1, 0xAA)
        a.signal(3, 0xBB)
        a.wait_return(2, 0xBB)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 1


class TestSuppression:
    def test_suppressed_address_not_checked(self):
        sync = {0x10}
        a = _hb(suppressor=lambda addr: addr in sync)
        a.write(1, 0x10, 1, L(0), False)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 0

    def test_suppressed_write_still_recorded_for_adhoc(self):
        sync = {0x10}
        a = _hb(suppressor=lambda addr: addr in sync)
        a.write(1, 0x10, 7, L(0), False)
        rec = a.last_write(0x10)
        assert rec is not None and rec.value == 7 and rec.tid == 1


class TestLongRun:
    def test_first_offense_tolerated(self):
        a = _hy(long_run=True)
        a.write(1, 0x10, 1, L(0), False)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 0  # first offense swallowed
        a.read(3, 0x10, L(2), False)
        assert a.report.racy_contexts == 1  # second offense reported

    def test_short_run_reports_immediately(self):
        a = _hy(long_run=False)
        a.write(1, 0x10, 1, L(0), False)
        a.read(2, 0x10, L(1), False)
        assert a.report.racy_contexts == 1


class TestAccounting:
    def test_memory_words_grows_with_state(self):
        a = _hb()
        before = a.memory_words()
        for addr in range(0x10, 0x40):
            a.write(1, addr, 0, L(0), False)
        assert a.memory_words() > before
