"""Race warnings, context deduplication, the 1000-context cap."""

from repro.isa.program import CodeLocation
from repro.detectors.reports import AccessInfo, RaceWarning, Report


def _warning(symbol="X", addr=0x1000, loc1=("f", "a", 0), loc2=("g", "b", 1)):
    return RaceWarning(
        addr=addr,
        symbol=symbol,
        prev=AccessInfo(0, CodeLocation(*loc1), True),
        cur=AccessInfo(1, CodeLocation(*loc2), False),
        kind="write-read",
    )


class TestRaceWarning:
    def test_base_symbol_strips_offset(self):
        assert _warning(symbol="ARR+5").base_symbol == "ARR"
        assert _warning(symbol="X").base_symbol == "X"

    def test_context_key_is_unordered(self):
        a = _warning(loc1=("f", "a", 0), loc2=("g", "b", 1))
        b = _warning(loc1=("g", "b", 1), loc2=("f", "a", 0))
        assert a.context_key() == b.context_key()

    def test_context_granularity(self):
        w = _warning(symbol="ARR+5")
        assert w.context_key("symbol")[0] == "ARR"
        assert w.context_key("address")[0] == "ARR+5"

    def test_str_mentions_symbol_and_threads(self):
        s = str(_warning())
        assert "X" in s and "T0" in s and "T1" in s


class TestReport:
    def test_dedup_same_context(self):
        r = Report("tool")
        assert r.add(_warning())
        assert not r.add(_warning())
        assert r.racy_contexts == 1
        assert r.raw_count == 2

    def test_different_locations_are_new_contexts(self):
        r = Report("tool")
        r.add(_warning(loc2=("g", "b", 1)))
        r.add(_warning(loc2=("g", "b", 2)))
        assert r.racy_contexts == 2

    def test_symbol_granularity_collapses_array(self):
        r = Report("tool", granularity="symbol")
        r.add(_warning(symbol="ARR+0", addr=0x1000))
        r.add(_warning(symbol="ARR+1", addr=0x1001))
        assert r.racy_contexts == 1

    def test_address_granularity_keeps_elements(self):
        r = Report("tool", granularity="address")
        r.add(_warning(symbol="ARR+0", addr=0x1000))
        r.add(_warning(symbol="ARR+1", addr=0x1001))
        assert r.racy_contexts == 2

    def test_cap_enforced(self):
        r = Report("tool", cap=10)
        for i in range(50):
            r.add(_warning(symbol=f"V{i}", addr=0x1000 + i))
        assert r.racy_contexts == 10
        assert r.raw_count == 50

    def test_reported_base_symbols(self):
        r = Report("tool")
        r.add(_warning(symbol="ARR+3"))
        r.add(_warning(symbol="X"))
        assert r.reported_base_symbols == {"ARR", "X"}

    def test_warnings_for(self):
        r = Report("tool")
        r.add(_warning(symbol="ARR+3"))
        r.add(_warning(symbol="X"))
        assert len(r.warnings_for("ARR")) == 1

    def test_summary_truncates(self):
        r = Report("tool", granularity="address")
        for i in range(30):
            r.add(_warning(symbol=f"V{i}", addr=0x2000 + i))
        text = r.summary()
        assert "more" in text

    def test_memory_words(self):
        r = Report("tool")
        assert r.memory_words() == 0
        r.add(_warning())
        assert r.memory_words() > 0
