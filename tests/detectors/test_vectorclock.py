"""Vector clock tests, including property-based lattice laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.vectorclock import ThreadClock, vc_join, vc_leq

VCS = st.dictionaries(st.integers(0, 5), st.integers(1, 100), max_size=6)


class TestVcOps:
    def test_join_is_pointwise_max(self):
        a = {0: 3, 1: 5}
        vc_join(a, {1: 2, 2: 7})
        assert a == {0: 3, 1: 5, 2: 7}

    def test_leq_basic(self):
        assert vc_leq({0: 1}, {0: 2})
        assert not vc_leq({0: 2}, {0: 1})
        assert vc_leq({}, {0: 1})
        assert not vc_leq({1: 1}, {0: 5})

    def test_missing_components_are_zero(self):
        assert vc_leq({0: 0}, {})


class TestThreadClock:
    def test_initial_epoch(self):
        t = ThreadClock(3)
        assert t.clock == 1
        assert t.vc == {3: 1}

    def test_tick_advances_own_component(self):
        t = ThreadClock(0)
        t.tick()
        assert t.clock == 2

    def test_join_absorbs(self):
        t = ThreadClock(0)
        t.join({1: 5})
        assert t.saw(1, 5)
        assert not t.saw(1, 6)

    def test_snapshot_caching(self):
        t = ThreadClock(0)
        s1 = t.snapshot()
        s2 = t.snapshot()
        assert s1 is s2  # cached between clock changes
        t.tick()
        s3 = t.snapshot()
        assert s3 is not s1
        assert s1 == {0: 1}  # old snapshot unaffected by later ticks

    def test_join_invalidates_snapshot_only_on_change(self):
        t = ThreadClock(0)
        s1 = t.snapshot()
        t.join({0: 1})  # no change
        assert t.snapshot() is s1
        t.join({7: 2})  # change
        assert t.snapshot() is not s1

    def test_memory_words_positive(self):
        assert ThreadClock(0).memory_words() > 0


# --- lattice laws -----------------------------------------------------------


@given(VCS, VCS)
@settings(max_examples=150, deadline=None)
def test_join_is_upper_bound(a, b):
    j = dict(a)
    vc_join(j, b)
    assert vc_leq(a, j)
    assert vc_leq(b, j)


@given(VCS, VCS)
@settings(max_examples=150, deadline=None)
def test_join_commutative(a, b):
    ab = dict(a)
    vc_join(ab, b)
    ba = dict(b)
    vc_join(ba, a)
    assert ab == ba


@given(VCS, VCS, VCS)
@settings(max_examples=100, deadline=None)
def test_join_associative(a, b, c):
    left = dict(a)
    vc_join(left, b)
    vc_join(left, c)
    bc = dict(b)
    vc_join(bc, c)
    right = dict(a)
    vc_join(right, bc)
    assert left == right


@given(VCS)
@settings(max_examples=80, deadline=None)
def test_join_idempotent(a):
    j = dict(a)
    vc_join(j, a)
    assert j == a


@given(VCS, VCS)
@settings(max_examples=150, deadline=None)
def test_leq_antisymmetry_modulo_zero_components(a, b):
    if vc_leq(a, b) and vc_leq(b, a):
        norm = lambda vc: {k: v for k, v in vc.items() if v != 0}
        assert norm(a) == norm(b)


@given(VCS, VCS, VCS)
@settings(max_examples=100, deadline=None)
def test_leq_transitive(a, b, c):
    if vc_leq(a, b) and vc_leq(b, c):
        assert vc_leq(a, c)


@given(VCS, VCS)
@settings(max_examples=100, deadline=None)
def test_join_is_least_upper_bound(a, b):
    """Any upper bound of a and b dominates join(a, b)."""
    j = dict(a)
    vc_join(j, b)
    upper = dict(a)
    vc_join(upper, b)
    vc_join(upper, {99: 1})  # a strictly-bigger bound
    assert vc_leq(j, upper)
