"""Epoch fast-path internals: lazy write frames and the read cache."""

from repro.detectors.base import WriteRecord
from repro.detectors.hybrid import HybridAlgorithm
from repro.detectors.reports import Report
from repro.detectors.vectorclock import ThreadClock


def _algo(fast_path=True):
    return HybridAlgorithm(report=Report(tool="t", granularity="symbol"), fast_path=fast_path)


def test_write_record_lazy_vc_matches_snapshot():
    t = ThreadClock(3)
    t.tick()
    t.tick()
    other = ThreadClock(1)
    other.tick()
    t.join(other.snapshot())
    rec = WriteRecord(t.tid, t.clock, 0, ("f", "b", 0), False, frozenset(), frame=t.frame())
    assert rec.vc == t.snapshot()


def test_write_record_update_in_place():
    t = ThreadClock(0)
    rec = WriteRecord(0, t.clock, 1, ("f", "b", 0), False, frozenset(), frame=t.frame())
    before = id(rec)
    t.tick()
    rec.update(t.clock, 2, ("f", "b", 1), False, frozenset(), t.frame())
    assert id(rec) == before
    assert rec.clock == t.clock
    assert rec.value == 2
    assert rec.vc == t.snapshot()


def test_frame_survives_tick_but_not_join():
    t = ThreadClock(0)
    f1 = t.frame()
    t.tick()
    assert t.frame() is f1  # tick only moves own clock; frame is others'
    other = ThreadClock(1)
    other.tick()
    t.join(other.snapshot())
    f2 = t.frame()
    assert f2 is not f1
    assert f2[1] == other.clock


def test_version_bumps_on_tick_and_effective_join():
    t = ThreadClock(0)
    v0 = t.version
    t.tick()
    assert t.version > v0
    other = ThreadClock(1)
    other.tick()
    v1 = t.version
    t.join(other.snapshot())
    assert t.version > v1
    v2 = t.version
    t.join(other.snapshot())  # no-op join: nothing new to learn
    assert t.version == v2


def test_repeated_same_thread_reads_hit_cache():
    algo = _algo()
    t = algo.thread(0)
    loc = ("f", "b", 0)
    algo.read(0, 100, loc, atomic=False)
    cell = algo.shadow[100]
    cached = cell.rcache
    assert cached is not None and cached[0] == 0
    first_read = cell.reads[0]
    algo.read(0, 100, loc, atomic=False)
    # the fast path returned before touching the read table
    assert cell.reads[0] is first_read
    assert cell.rcache is cached


def test_cache_invalidated_by_write_even_in_place():
    algo = _algo()
    loc = ("f", "b", 0)
    algo.write(0, 100, 1, loc, atomic=False)
    algo.read(0, 100, loc, atomic=False)
    assert algo.shadow[100].rcache is not None
    # same-thread write updates the record *in place* — identity alone
    # could not reveal it, so the write must clear the cache explicitly
    algo.write(0, 100, 2, loc, atomic=False)
    assert algo.shadow[100].rcache is None


def test_cache_invalidated_by_clock_movement():
    algo = _algo()
    loc = ("f", "b", 0)
    algo.read(0, 100, loc, atomic=False)
    t = algo.thread(0)
    cached = algo.shadow[100].rcache
    t.tick()
    # stale version: fast path must fall through and re-record
    algo.read(0, 100, loc, atomic=False)
    assert algo.shadow[100].rcache != cached
    assert algo.shadow[100].reads[0].clock == t.clock


def test_fast_and_slow_paths_agree_on_a_race():
    def drive(algo):
        algo.write(1, 100, 1, ("f", "w", 0), atomic=False)
        algo.read(2, 100, ("f", "r", 0), atomic=False)
        return algo.report

    fast, slow = drive(_algo(True)), drive(_algo(False))
    assert [repr(w) for w in fast.warnings] == [repr(w) for w in slow.warnings]
    assert len(fast.warnings) == 1


def test_no_cache_when_fast_path_disabled():
    algo = _algo(False)
    algo.read(0, 100, ("f", "b", 0), atomic=False)
    assert algo.shadow[100].rcache is None
