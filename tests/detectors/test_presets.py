"""The named tool-preset registry (ToolConfig.preset / presets)."""

import pytest

from repro.detectors import ToolConfig
from repro.detectors.detector import register_preset
from repro.harness.registry import resolve_tool, tool_names


def test_presets_lists_known_names():
    names = ToolConfig.presets()
    assert "helgrind-lib" in names
    assert "helgrind-nolib-spin" in names
    assert "drd" in names
    assert "eraser" in names
    assert names == tuple(sorted(names))


def test_preset_resolves_paper_tools():
    assert ToolConfig.preset("helgrind-lib") == ToolConfig.helgrind_lib()
    assert ToolConfig.preset("drd") == ToolConfig.drd()
    assert ToolConfig.preset("eraser") == ToolConfig.eraser()


def test_trailing_digits_set_spin_window():
    assert ToolConfig.preset("helgrind-lib-spin3") == ToolConfig.helgrind_lib_spin(3)
    assert ToolConfig.preset("helgrind-nolib-spin7") == ToolConfig.helgrind_nolib_spin(7)
    assert ToolConfig.preset("universal9") == ToolConfig.universal_hybrid(9)


def test_name_normalization():
    canonical = ToolConfig.preset("helgrind-lib-spin7")
    assert ToolConfig.preset("Helgrind_Lib_Spin7") == canonical
    assert ToolConfig.preset("helgrind lib spin 7") == canonical


def test_unknown_name_raises_with_suggestions():
    with pytest.raises(KeyError) as err:
        ToolConfig.preset("no-such-tool")
    assert "no-such-tool" in str(err.value)


def test_overrides_forwarded():
    cfg = ToolConfig.preset("helgrind-lib-spin7", long_run=True)
    assert cfg.long_run


def test_register_preset_extends_registry():
    def factory(**kwargs):
        return ToolConfig.drd()

    register_preset("test-only-drd-alias", factory)
    try:
        assert ToolConfig.preset("test-only-drd-alias") == ToolConfig.drd()
        assert "test-only-drd-alias" in ToolConfig.presets()
    finally:
        from repro.detectors.detector import _PRESETS

        _PRESETS.pop("test-only-drd-alias", None)


def test_resolve_tool_passthrough_and_names():
    cfg = ToolConfig.helgrind_lib()
    assert resolve_tool(cfg) is cfg
    assert resolve_tool("helgrind-lib") == cfg
    assert tuple(tool_names()) == ToolConfig.presets()
