"""The hybrid/pure-hb sensitivity split — the paper's core trade-off."""

from repro.isa.program import CodeLocation
from repro.detectors.happensbefore import PureHappensBeforeAlgorithm
from repro.detectors.hybrid import HybridAlgorithm
from repro.detectors.reports import Report

L = lambda i: CodeLocation("f", "b", i)


def _both():
    return (
        HybridAlgorithm(Report("hy")),
        PureHappensBeforeAlgorithm(Report("hb")),
    )


def _lock_masked_trace(algo):
    """T1: x++ then empty CS; T2: CS then x++ (observed in that order)."""
    algo.write(1, 0x10, 1, L(0), False)
    algo.acquire_lock(1, 0x99)
    algo.release_lock(1, 0x99)
    algo.acquire_lock(2, 0x99)
    algo.release_lock(2, 0x99)
    algo.write(2, 0x10, 2, L(1), False)


def _common_lock_trace(algo):
    algo.acquire_lock(1, 0x99)
    algo.write(1, 0x10, 1, L(0), False)
    algo.release_lock(1, 0x99)
    algo.acquire_lock(2, 0x99)
    algo.write(2, 0x10, 2, L(1), False)
    algo.release_lock(2, 0x99)


class TestLockMaskedRace:
    def test_hybrid_reports_lock_masked_race(self):
        hy, hb = _both()
        _lock_masked_trace(hy)
        assert hy.report.racy_contexts == 1

    def test_pure_hb_misses_lock_masked_race(self):
        hy, hb = _both()
        _lock_masked_trace(hb)
        assert hb.report.racy_contexts == 0


class TestCommonLock:
    def test_hybrid_excuses_common_lock(self):
        hy, hb = _both()
        _common_lock_trace(hy)
        assert hy.report.racy_contexts == 0

    def test_pure_hb_orders_via_lock_edges(self):
        hy, hb = _both()
        _common_lock_trace(hb)
        assert hb.report.racy_contexts == 0


class TestDisjointLocks:
    def test_hybrid_reports_disjoint_locksets(self):
        hy, _ = _both()
        hy.acquire_lock(1, 0xA)
        hy.write(1, 0x10, 1, L(0), False)
        hy.release_lock(1, 0xA)
        hy.acquire_lock(2, 0xB)
        hy.write(2, 0x10, 2, L(1), False)
        hy.release_lock(2, 0xB)
        assert hy.report.racy_contexts == 1

    def test_hybrid_nonlock_hb_still_excuses(self):
        """Condvar/semaphore edges remain valid hb in the hybrid."""
        hy, _ = _both()
        hy.write(1, 0x10, 1, L(0), False)
        hy.signal(1, 0xCC)
        hy.wait_return(2, 0xCC)
        hy.write(2, 0x10, 2, L(1), False)
        assert hy.report.racy_contexts == 0

    def test_hybrid_lockset_partial_overlap(self):
        hy, _ = _both()
        hy.acquire_lock(1, 0xA)
        hy.acquire_lock(1, 0xB)
        hy.write(1, 0x10, 1, L(0), False)
        hy.release_lock(1, 0xB)
        hy.release_lock(1, 0xA)
        hy.acquire_lock(2, 0xB)
        hy.write(2, 0x10, 2, L(1), False)
        hy.release_lock(2, 0xB)
        assert hy.report.racy_contexts == 0  # B is common


class TestAdhocEdgeInBoth:
    def test_adhoc_edge_orders_for_hybrid(self):
        hy, _ = _both()
        hy.write(1, 0x10, 1, L(0), False)  # data
        hy.write(1, 0x20, 1, L(1), False)  # flag (counterpart write)
        rec = hy.last_write(0x20)
        hy.adhoc_acquire(2, rec.vc)
        hy.read(2, 0x10, L(2), False)
        assert hy.report.racy_contexts == 0
        assert hy.adhoc_edges == 1
