"""The ad-hoc synchronization runtime engine."""

from repro.isa.program import CodeLocation
from repro.detectors.adhoc import AdhocSyncEngine
from repro.detectors.hybrid import HybridAlgorithm
from repro.detectors.reports import Report
from repro.vm import events as ev

L = lambda i: CodeLocation("f", "b", i)


def _engine():
    algo = HybridAlgorithm(Report("hy"))
    eng = AdhocSyncEngine(algo)
    algo.suppressor = eng.is_sync_addr
    return eng, algo


def _enter(eng, tid, loop_id=0):
    eng.loop_enter(ev.MarkedLoopEnter(0, tid, loop_id, L(0)))


def _exit(eng, tid, loop_id=0):
    eng.loop_exit(ev.MarkedLoopExit(0, tid, loop_id, L(0)))


def _read(eng, tid, addr, value, loop_id=0):
    eng.cond_read(ev.MarkedCondRead(0, tid, loop_id, addr, value, L(1)))


class TestSyncClassification:
    def test_cond_read_classifies_address(self):
        eng, algo = _engine()
        _enter(eng, 2)
        _read(eng, 2, 0x20, 0)
        assert eng.is_sync_addr(0x20)
        assert not eng.is_sync_addr(0x21)

    def test_read_outside_loop_ignored(self):
        eng, algo = _engine()
        _read(eng, 2, 0x20, 0)  # never entered the loop
        assert not eng.is_sync_addr(0x20)

    def test_loop_stack_nesting(self):
        eng, algo = _engine()
        _enter(eng, 2, loop_id=0)
        _enter(eng, 2, loop_id=1)  # nested marked loop
        _read(eng, 2, 0x20, 0, loop_id=0)  # outer loop still active
        assert eng.is_sync_addr(0x20)
        _exit(eng, 2, loop_id=1)
        _exit(eng, 2, loop_id=0)
        _read(eng, 2, 0x30, 0, loop_id=0)  # loop exited: ignored
        assert not eng.is_sync_addr(0x30)

    def test_header_reentry_does_not_stack(self):
        eng, algo = _engine()
        _enter(eng, 2)
        _enter(eng, 2)  # second iteration
        _exit(eng, 2)
        assert eng._active[2] == []


class TestCounterpartMatching:
    def test_value_match_creates_edge(self):
        eng, algo = _engine()
        algo.write(1, 0x10, 5, L(0), False)  # data
        algo.write(1, 0x20, 1, L(1), False)  # counterpart write
        _enter(eng, 2)
        _read(eng, 2, 0x20, 1)  # observes the written value
        assert eng.edges == 1
        algo.read(2, 0x10, L(2), False)
        assert algo.report.racy_contexts == 0

    def test_value_mismatch_no_edge(self):
        eng, algo = _engine()
        algo.write(1, 0x20, 1, L(0), False)
        _enter(eng, 2)
        _read(eng, 2, 0x20, 99)  # stale/different value
        assert eng.edges == 0

    def test_own_write_no_edge(self):
        eng, algo = _engine()
        algo.write(2, 0x20, 1, L(0), False)
        _enter(eng, 2)
        _read(eng, 2, 0x20, 1)
        assert eng.edges == 0

    def test_no_prior_write_no_edge(self):
        eng, algo = _engine()
        _enter(eng, 2)
        _read(eng, 2, 0x20, 0)  # initial value, never written
        assert eng.edges == 0

    def test_sync_read_matches_after_classification(self):
        """Any read of a classified sync variable pairs with its writer
        (the CAS-grab / guard-recheck path)."""
        eng, algo = _engine()
        _enter(eng, 2)
        _read(eng, 2, 0x20, 0)  # classify, no edge
        _exit(eng, 2)
        algo.write(1, 0x20, 1, L(0), False)
        eng.sync_read(3, 0x20, 1)  # plain read outside any loop
        assert eng.edges == 1

    def test_sync_read_of_unclassified_addr_ignored(self):
        eng, algo = _engine()
        algo.write(1, 0x30, 1, L(0), False)
        eng.sync_read(2, 0x30, 1)
        assert eng.edges == 0


class TestSuppression:
    def test_flag_accesses_not_reported(self):
        """The synchronization race on the flag itself is suppressed."""
        eng, algo = _engine()
        _enter(eng, 2)
        _read(eng, 2, 0x20, 0)  # classify before any conflict
        algo.read(2, 0x20, L(1), False)
        algo.write(1, 0x20, 1, L(0), False)
        assert algo.report.racy_contexts == 0


class TestAccounting:
    def test_stats_and_memory(self):
        eng, algo = _engine()
        _enter(eng, 2)
        _read(eng, 2, 0x20, 0)
        _exit(eng, 2)
        assert eng.loops_entered == 1
        assert eng.loop_exits == 1
        assert eng.cond_reads == 1
        assert eng.memory_words() > 0
