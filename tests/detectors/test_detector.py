"""The detector façade: tool configs, interception, event routing."""

import pytest

from repro.detectors import RaceDetector, ToolConfig
from repro.isa.builder import ProgramBuilder
from repro.runtime import MUTEX_SIZE, build_library

from tests.conftest import detect, flag_handoff_program


class TestToolConfigs:
    def test_paper_presets(self):
        lib, lib_spin, nolib_spin, drd = ToolConfig.paper_tools(7)
        assert lib.intercept_lib and not lib.spin and lib.coarse_cv
        assert lib_spin.spin and lib_spin.spin_max_blocks == 7
        assert not lib_spin.coarse_cv
        assert not nolib_spin.intercept_lib and nolib_spin.spin
        assert drd.algorithm == "hb" and not drd.spin
        assert drd.context_granularity == "address"

    def test_spin_k_in_name(self):
        assert "spin(3)" in ToolConfig.helgrind_lib_spin(3).name

    def test_with_name(self):
        cfg = ToolConfig.drd().with_name("renamed")
        assert cfg.name == "renamed" and cfg.algorithm == "hb"

    def test_detector_algorithm_selection(self):
        assert RaceDetector(ToolConfig.drd()).algorithm.name == "pure-hb"
        assert RaceDetector(ToolConfig.helgrind_lib()).algorithm.name == "hybrid"

    def test_spin_configs_have_adhoc_engine(self):
        assert RaceDetector(ToolConfig.helgrind_lib_spin(7)).adhoc is not None
        assert RaceDetector(ToolConfig.helgrind_lib()).adhoc is None


def _locked_counter_program():
    pb = ProgramBuilder("t")
    pb.global_("C", 1)
    pb.global_("M", MUTEX_SIZE)
    w = pb.function("worker")
    m = w.addr("M")
    w.call("mutex_lock", [m])
    a = w.addr("C")
    w.store(a, w.add(w.load(a), 1))
    w.call("mutex_unlock", [m])
    w.ret()
    mn = pb.function("main")
    t1 = mn.spawn("worker", [])
    t2 = mn.spawn("worker", [])
    mn.join(t1)
    mn.join(t2)
    mn.halt()
    pb.link(build_library())
    return pb.build()


class TestInterception:
    def test_lib_mode_hides_library_internals(self):
        det, _ = detect(_locked_counter_program(), ToolConfig.helgrind_lib())
        # The mutex words are library-internal: no shadow cells for them
        # beyond the user counter.
        assert det.report.racy_contexts == 0
        assert len(det.algorithm.shadow) == 1  # only the counter

    def test_nolib_mode_sees_raw_traffic(self):
        det, _ = detect(
            _locked_counter_program(), ToolConfig.helgrind_nolib_spin(7)
        )
        assert len(det.algorithm.shadow) > 1  # lock words visible too

    def test_lib_mode_tracks_locksets(self):
        det, _ = detect(_locked_counter_program(), ToolConfig.helgrind_lib())
        # After the run all locks are released.
        assert all(not held for held in det.algorithm._held.values())

    def test_events_processed_counted(self):
        det, _ = detect(_locked_counter_program(), ToolConfig.helgrind_lib())
        assert det.events_processed > 0

    def test_memory_words_positive(self):
        det, _ = detect(_locked_counter_program(), ToolConfig.helgrind_lib())
        assert det.memory_words() > 0


class TestFourToolsOnMotivatingExample:
    @pytest.mark.parametrize("k", [7, 8])
    def test_spin_configs_clean(self, k):
        for cfg in (ToolConfig.helgrind_lib_spin(k), ToolConfig.helgrind_nolib_spin(k)):
            det, result = detect(flag_handoff_program(), cfg)
            assert result.ok
            assert det.report.racy_contexts == 0, cfg.name

    def test_non_spin_configs_report_apparent_and_sync_races(self):
        for cfg in (ToolConfig.helgrind_lib(), ToolConfig.drd()):
            det, result = detect(flag_handoff_program(), cfg)
            assert result.ok
            syms = det.report.reported_base_symbols
            assert "DATA" in syms, cfg.name  # apparent race
            assert "FLAG" in syms, cfg.name  # synchronization race
