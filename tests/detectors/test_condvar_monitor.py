"""Condvar bug-pattern detection (Helgrind+'s slide-14 features)."""

from repro.detectors import CondvarMonitor, ToolConfig
from repro.isa.program import CodeLocation
from repro.runtime import CONDVAR_SIZE, MUTEX_SIZE
from repro.workloads.common import busy_nops, finish_main, new_program

from tests.conftest import detect

L = lambda i: CodeLocation("f", "b", i)


class TestMonitorUnit:
    def test_signal_then_wait_is_clean(self):
        m = CondvarMonitor()
        m.wait_enter(1, 0x10, L(0))
        m.signal(0x10)
        m.wait_exit(1, 0x10, L(1))
        assert m.finalize() == []

    def test_outstanding_wait_is_lost_signal(self):
        m = CondvarMonitor()
        m.signal(0x10)  # signal delivered BEFORE the wait started
        m.wait_enter(1, 0x10, L(0))
        warnings = m.finalize()
        assert len(warnings) == 1
        assert warnings[0].kind == "lost-signal"
        assert warnings[0].tid == 1

    def test_wait_exit_without_new_signal_is_spurious(self):
        m = CondvarMonitor()
        m.signal(0x10)
        m.wait_enter(1, 0x10, L(0))  # entry count = 1
        m.wait_exit(1, 0x10, L(1))  # no NEW signal since entry
        warnings = m.finalize()
        assert [w.kind for w in warnings] == ["spurious-wakeup"]

    def test_signal_on_other_cv_does_not_pair(self):
        m = CondvarMonitor()
        m.wait_enter(1, 0x10, L(0))
        m.signal(0x99)
        m.wait_exit(1, 0x10, L(1))
        assert [w.kind for w in m.finalize()] == ["spurious-wakeup"]

    def test_multiple_waiters_one_broadcast(self):
        m = CondvarMonitor()
        m.wait_enter(1, 0x10, L(0))
        m.wait_enter(2, 0x10, L(0))
        m.signal(0x10)
        m.wait_exit(1, 0x10, L(1))
        m.wait_exit(2, 0x10, L(1))
        assert m.finalize() == []

    def test_memory_accounting(self):
        m = CondvarMonitor()
        m.wait_enter(1, 0x10, L(0))
        assert m.memory_words() > 0


def _lost_signal_program():
    """Signal delivered before the waiter snapshots the generation: the
    waiter spins forever (bounded by the step budget)."""
    pb = new_program("lost_signal")
    pb.global_("M", MUTEX_SIZE)
    pb.global_("CV", CONDVAR_SIZE)

    sig = pb.function("signaler")
    m = sig.addr("M")
    cv = sig.addr("CV")
    sig.call("mutex_lock", [m])
    sig.call("cv_signal", [cv])  # nobody is waiting yet: signal is lost
    sig.call("mutex_unlock", [m])
    sig.ret()

    w = pb.function("waiter")
    busy_nops(w, 120)  # guarantee the signal fires first
    m = w.addr("M")
    cv = w.addr("CV")
    w.call("mutex_lock", [m])
    # BUG: no predicate loop — waits unconditionally after the signal.
    w.call("cv_wait", [cv, m])
    w.call("mutex_unlock", [m])
    w.ret()

    mn = pb.function("main")
    tids = [mn.spawn("signaler", []), mn.spawn("waiter", [])]
    finish_main(mn, tids)
    return pb.build()


class TestEndToEnd:
    def test_lost_signal_detected_on_hung_run(self):
        det, result = detect(
            _lost_signal_program(),
            ToolConfig.helgrind_lib(),
            seed=1,
            max_steps=30_000,
        )
        assert result.timed_out  # the waiter spins forever
        warnings = det.sync_warnings()
        assert any(w.kind == "lost-signal" for w in warnings)

    def test_correct_protocol_produces_no_warnings(self):
        from repro.workloads.dr_test.condvars import _signal_wait_handoff

        det, result = detect(
            _signal_wait_handoff(2)(), ToolConfig.helgrind_lib(), seed=1
        )
        assert result.ok
        assert det.sync_warnings() == []

    def test_nolib_mode_has_no_monitor(self):
        det, result = detect(
            _lost_signal_program(),
            ToolConfig.helgrind_nolib_spin(7),
            seed=1,
            max_steps=30_000,
        )
        assert det.sync_warnings() == []
