"""Property-based invariants of lockset machinery (DESIGN.md §6)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import EraserAlgorithm, HybridAlgorithm
from repro.detectors.reports import Report
from repro.isa.program import CodeLocation

L = CodeLocation("f", "b", 0)

#: random event streams: (op, tid, obj-or-addr, is_write)
OPS = st.lists(
    st.tuples(
        st.sampled_from(["acq", "rel", "read", "write"]),
        st.integers(0, 3),  # tid
        st.integers(0, 4),  # lock id / address selector
    ),
    max_size=60,
)


@given(OPS)
@settings(max_examples=120, deadline=None)
def test_eraser_candidate_sets_only_shrink(ops):
    """Lockset monotonicity: once refined, a variable's candidate set
    never grows, for arbitrary acquire/release/access interleavings."""
    algo = EraserAlgorithm(Report("e"))
    snapshots = {}
    for op, tid, sel in ops:
        if op == "acq":
            algo.acquire_lock(tid, 0x100 + sel)
        elif op == "rel":
            algo.release_lock(tid, 0x100 + sel)
        else:
            addr = 0x10 + sel
            if op == "write":
                algo.write(tid, addr, 0, L, False)
            else:
                algo.read(tid, addr, L, False)
            cell = algo._cells[addr]
            prev = snapshots.get(addr)
            if prev is not None and cell.lockset is not None:
                assert cell.lockset <= prev, (addr, prev, cell.lockset)
            if cell.lockset is not None:
                snapshots[addr] = cell.lockset


@given(OPS)
@settings(max_examples=120, deadline=None)
def test_held_locks_never_negative_or_phantom(ops):
    """A thread's held-lock set contains exactly the locks it acquired
    and has not released, for arbitrary sequences (double releases and
    unmatched releases are tolerated as no-ops)."""
    algo = HybridAlgorithm(Report("h"))
    model = {}
    for op, tid, sel in ops:
        obj = 0x100 + sel
        if op == "acq":
            algo.acquire_lock(tid, obj)
            model.setdefault(tid, set()).add(obj)
        elif op == "rel":
            algo.release_lock(tid, obj)
            model.setdefault(tid, set()).discard(obj)
        elif op == "write":
            algo.write(tid, 0x10 + sel, 0, L, False)
        else:
            algo.read(tid, 0x10 + sel, L, False)
        assert algo._locks(tid) == frozenset(model.get(tid, set()))


@given(OPS)
@settings(max_examples=80, deadline=None)
def test_report_counts_bounded_by_accesses(ops):
    """Sanity: a detector can never report more raw warnings than it
    checked access pairs (each access checks at most threads+1 pairs)."""
    algo = HybridAlgorithm(Report("h"))
    accesses = 0
    for op, tid, sel in ops:
        if op == "acq":
            algo.acquire_lock(tid, 0x100 + sel)
        elif op == "rel":
            algo.release_lock(tid, 0x100 + sel)
        elif op == "write":
            algo.write(tid, 0x10 + sel, 0, L, False)
            accesses += 1
        else:
            algo.read(tid, 0x10 + sel, L, False)
            accesses += 1
    assert algo.report.raw_count <= accesses * 5
