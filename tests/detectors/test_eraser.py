"""Pure lockset analysis — the paper's background slides 8-12 as tests."""

from repro.detectors import EraserAlgorithm, ToolConfig
from repro.detectors.reports import Report
from repro.isa.program import CodeLocation
from repro.runtime import CONDVAR_SIZE, MUTEX_SIZE
from repro.workloads.common import finish_main, new_program

from tests.conftest import detect

L = lambda i: CodeLocation("f", "b", i)


def _eraser():
    return EraserAlgorithm(Report("eraser"))


class TestStateMachine:
    def test_virgin_to_exclusive_no_warning(self):
        a = _eraser()
        a.write(1, 0x10, 1, L(0), False)
        a.write(1, 0x10, 2, L(1), False)  # still exclusive to T1
        assert a.report.racy_contexts == 0

    def test_initialization_false_positive(self):
        """v1 lockset's famous weakness: an unlocked initialization
        empties the candidate set, so the first locked use by another
        thread is (wrongly) flagged.  The Exclusive-state refinement of
        the later Eraser paper fixes this; the slides present v1."""
        a = _eraser()
        a.write(0, 0x10, 1, L(0), False)  # main initializes, no locks
        a.acquire_lock(1, 0xA)
        a.write(1, 0x10, 2, L(1), False)  # C(v) = {} & {A} = {}
        a.release_lock(1, 0xA)
        assert a.report.racy_contexts == 1

    def test_slide9_lockset_refinement_to_empty(self):
        """The slide-9 run: v is used under m1 by both threads, then
        accessed without any lock — the candidate set refines
        {m1,m2,...} -> {m1} -> {m1} -> {} and the warning fires."""
        a = _eraser()
        a.acquire_lock(1, 0xA)  # Lock(m1)
        a.write(1, 0x10, 1, L(0), False)  # v = v + 1   (Exclusive)
        a.release_lock(1, 0xA)
        a.acquire_lock(2, 0xA)  # thread 2, same lock
        a.write(2, 0x10, 2, L(1), False)  # C(v) = {m1}
        a.release_lock(2, 0xA)
        assert a.report.racy_contexts == 0
        a.write(1, 0x10, 3, L(2), False)  # no lock: C(v) = {} -> warn
        assert a.report.racy_contexts == 1

    def test_disjoint_locks_refine_to_empty(self):
        a = _eraser()
        a.acquire_lock(1, 0xA)
        a.write(1, 0x10, 1, L(0), False)
        a.release_lock(1, 0xA)
        a.acquire_lock(2, 0xB)
        a.write(2, 0x10, 2, L(1), False)  # C(v) = {A} & {B} = {}
        a.release_lock(2, 0xB)
        a.acquire_lock(1, 0xA)
        a.write(1, 0x10, 3, L(2), False)  # {B} & {A} = {} -> warn
        a.release_lock(1, 0xA)
        assert a.report.racy_contexts >= 1

    def test_consistent_lock_never_warns(self):
        a = _eraser()
        for tid in (1, 2, 1, 2):
            a.acquire_lock(tid, 0xA)
            a.write(tid, 0x10, tid, L(tid), False)
            a.release_lock(tid, 0xA)
        assert a.report.racy_contexts == 0

    def test_read_only_sharing_is_quiet(self):
        """A variable that is never written warns nothing, whatever the
        locking discipline."""
        a = _eraser()
        a.read(1, 0x10, L(0), False)
        a.read(2, 0x10, L(1), False)
        a.read(3, 0x10, L(2), False)
        assert a.report.racy_contexts == 0

    def test_write_after_shared_reads_escalates(self):
        a = _eraser()
        a.write(1, 0x10, 1, L(0), False)
        a.read(2, 0x10, L(1), False)  # pair (w, r), empty set -> warn
        a.write(3, 0x10, 2, L(2), False)  # pair (r, w) -> warn
        assert a.report.racy_contexts >= 1

    def test_signal_wait_false_positive(self):
        """Slide 10: lockset cannot see signal/wait — false alarm."""
        a = _eraser()
        a.write(1, 0x10, 0, L(0), False)  # X=0; X++ by thread 1
        a.signal(1, 0xCC)  # Signal(CV) — invisible to lockset
        a.wait_return(2, 0xCC)  # Wait(CV)
        a.read(2, 0x10, L(1), False)  # T=X -> warning (wrongly)
        assert a.report.racy_contexts == 1


class TestDuplicateWarningDedup:
    def test_swapped_order_pair_reports_once(self):
        """Regression: the same (location pair, kind) conflict must not be
        reported a second time when the two threads' access orders swap —
        the dedup key is an *unordered* pair."""
        a = _eraser()
        a.write(1, 0x10, 1, L(0), False)  # T1 writes at L0
        a.read(2, 0x10, L(1), False)  # T2 reads at L1 -> write-read warning
        assert a.report.raw_count == 1
        a.write(1, 0x10, 2, L(0), False)  # same pair, orders swapped
        assert a.report.raw_count == 1
        assert a.report.racy_contexts == 1

    def test_swapped_order_write_write_reports_once(self):
        a = _eraser()
        a.write(1, 0x10, 1, L(0), False)
        a.write(2, 0x10, 2, L(1), False)  # write-write warning
        assert a.report.raw_count == 1
        a.write(1, 0x10, 3, L(0), False)  # swapped order, same pair
        assert a.report.raw_count == 1

    def test_distinct_pairs_still_report(self):
        a = _eraser()
        a.write(1, 0x10, 1, L(0), False)
        a.write(2, 0x10, 2, L(1), False)
        a.write(1, 0x10, 3, L(2), False)  # genuinely new location pair
        assert a.report.raw_count == 2


class TestEndToEnd:
    def _cv_program(self):
        pb = new_program("cv")
        pb.global_("X", 1)
        pb.global_("READY", 1)
        pb.global_("M", MUTEX_SIZE)
        pb.global_("CV", CONDVAR_SIZE)
        prod = pb.function("producer")
        prod.store_global("X", 1)
        m = prod.addr("M")
        cv = prod.addr("CV")
        prod.call("mutex_lock", [m])
        prod.store_global("READY", 1)
        prod.call("cv_broadcast", [cv])
        prod.call("mutex_unlock", [m])
        prod.ret()
        cons = pb.function("consumer")
        m = cons.addr("M")
        cv = cons.addr("CV")
        cons.call("mutex_lock", [m])
        cons.jmp("check")
        cons.label("check")
        r = cons.load_global("READY")
        cons.br(cons.ne(r, 0), "go", "wait")
        cons.label("wait")
        cons.call("cv_wait", [cv, m])
        cons.jmp("check")
        cons.label("go")
        cons.call("mutex_unlock", [m])
        cons.print_(cons.load_global("X"))
        cons.ret()
        mn = pb.function("main")
        tids = [mn.spawn("consumer", []), mn.spawn("producer", [])]
        finish_main(mn, tids)
        return pb.build()

    def test_eraser_false_positive_on_condvar_program(self):
        """The slide-10 scenario end-to-end: hb-aware tools are clean,
        pure lockset flags X."""
        eraser, result = detect(self._cv_program(), ToolConfig.eraser(), seed=1)
        assert result.ok
        assert "X" in eraser.report.reported_base_symbols

        hb, _ = detect(self._cv_program(), ToolConfig.drd(), seed=1)
        assert "X" not in hb.report.reported_base_symbols

    def test_eraser_clean_on_locked_program(self):
        pb = new_program("locked")
        pb.global_("C", 1)
        pb.global_("M", MUTEX_SIZE)
        w = pb.function("worker")
        m = w.addr("M")
        w.call("mutex_lock", [m])
        a = w.addr("C")
        w.store(a, w.add(w.load(a), 1))
        w.call("mutex_unlock", [m])
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", []), mn.spawn("worker", [])]
        finish_main(mn, tids)
        det, result = detect(pb.build(), ToolConfig.eraser(), seed=1)
        assert result.ok
        assert det.report.racy_contexts == 0

    def test_eraser_catches_schedule_masked_races(self):
        """Lockset's strength: it reports lock-masked races that pure hb
        misses, in *any* schedule."""
        from repro.workloads.dr_test.suite import build_suite

        wl = {w.name: w for w in build_suite()}["racy_lockmask_basic"]
        det, result = detect(wl.build(), ToolConfig.eraser(), seed=wl.seed)
        assert result.ok
        assert "X" in det.report.reported_base_symbols

    def test_eraser_memory_accounting(self):
        det, _ = detect(self._cv_program(), ToolConfig.eraser(), seed=1)
        assert det.memory_words() > 0
