"""Analysis-service tests: schema, fairness, journal, engine, transports."""
