"""Strict schema-v1 validation: reject-never-coerce, golden fixtures.

The journal replays requests verbatim after a crash, so anything the
validator half-accepts becomes a request the daemon cannot faithfully
re-run — every rejection path here is a durability property, not
pedantry.
"""

import base64

import pytest

from repro.service.schema import (
    GOLDEN_REQUEST,
    GOLDEN_RESPONSE,
    RESPONSE_STATUSES,
    SCHEMA_VERSION,
    SchemaError,
    make_response,
    response_http_status,
    validate_request,
)

TRACE_B64 = base64.b64encode(b"RPRT\x00fake-but-framed").decode("ascii")


def valid(**overrides):
    req = {
        "v": 1,
        "tenant": "team-a",
        "kind": "workload",
        "workload": "racy-counter",
    }
    req.update(overrides)
    return req


class TestValidRequests:
    def test_golden_request_validates(self):
        sub = validate_request(GOLDEN_REQUEST)
        assert sub.tenant == "team-a"
        assert sub.kind == "workload"
        assert sub.workload == "racy-counter"
        assert sub.id == "req-1"
        assert sub.deadline_s == 30.0

    def test_minimal_request(self):
        sub = validate_request(valid())
        assert sub.tool == "helgrind-lib-spin7"  # the paper's default
        assert sub.seed is None and sub.max_steps is None

    def test_tenant_is_stripped(self):
        assert validate_request(valid(tenant="  team-a ")).tenant == "team-a"

    def test_source_kind(self):
        sub = validate_request(
            {"v": 1, "tenant": "t", "kind": "source", "source": "program x ..."}
        )
        assert sub.source == "program x ..."
        assert sub.workload is None

    def test_trace_kind_decodes_payload(self):
        sub = validate_request(
            {"v": 1, "tenant": "t", "kind": "trace", "trace_b64": TRACE_B64}
        )
        assert sub.trace_bytes.startswith(b"RPRT")

    def test_integer_deadline_becomes_float(self):
        assert validate_request(valid(deadline_s=5)).deadline_s == 5.0


class TestRejections:
    def expect(self, req, fragment):
        with pytest.raises(SchemaError, match=fragment):
            validate_request(req)

    def test_non_object(self):
        self.expect(["not", "a", "dict"], "JSON object")

    def test_unknown_field_named_in_error(self):
        self.expect(valid(surprise=1), "surprise")

    def test_missing_version(self):
        req = valid()
        del req["v"]
        self.expect(req, "'v'")

    def test_wrong_version(self):
        self.expect(valid(v=2), f"v={SCHEMA_VERSION}")

    def test_missing_tenant(self):
        req = valid()
        del req["tenant"]
        self.expect(req, "tenant")

    def test_blank_tenant(self):
        self.expect(valid(tenant="   "), "tenant")

    def test_bad_kind(self):
        self.expect(valid(kind="program"), "kind")

    def test_missing_payload(self):
        req = valid()
        del req["workload"]
        self.expect(req, "workload")

    def test_two_payloads(self):
        self.expect(valid(source="..."), "exactly")

    def test_payload_kind_mismatch(self):
        req = valid(kind="source")
        self.expect(req, "source")

    def test_empty_payload(self):
        self.expect(valid(workload=""), "non-empty")

    def test_unknown_tool(self):
        self.expect(valid(tool="valgrind"), "valgrind")

    def test_non_string_id(self):
        self.expect(valid(id=7), "'id'")

    @pytest.mark.parametrize("seed", [-1, 1.5, "1", True])
    def test_bad_seed(self, seed):
        self.expect(valid(seed=seed), "seed")

    @pytest.mark.parametrize("max_steps", [0, -5, 1.5, False])
    def test_bad_max_steps(self, max_steps):
        self.expect(valid(max_steps=max_steps), "max_steps")

    @pytest.mark.parametrize("deadline", [0, -1.0, "soon", True])
    def test_bad_deadline(self, deadline):
        self.expect(valid(deadline_s=deadline), "deadline_s")

    def test_trace_not_base64(self):
        self.expect(
            {"v": 1, "tenant": "t", "kind": "trace", "trace_b64": "!!!"},
            "base64",
        )

    def test_trace_not_rprt_framed(self):
        payload = base64.b64encode(b"GIFbytes").decode("ascii")
        self.expect(
            {"v": 1, "tenant": "t", "kind": "trace", "trace_b64": payload},
            "RPRT",
        )


class TestResponses:
    def test_golden_response_shape(self):
        resp = make_response(
            "ok",
            id="req-1",
            verdict=GOLDEN_RESPONSE["verdict"],
            duration_s=0.42,
        )
        assert set(resp) == set(GOLDEN_RESPONSE)
        assert resp["v"] == SCHEMA_VERSION

    def test_optional_fields_are_omitted(self):
        resp = make_response("backpressure", retry_after_s=0.5)
        assert "id" not in resp and "verdict" not in resp
        assert resp["retry_after_s"] == 0.5

    @pytest.mark.parametrize(
        "status,code",
        [
            ("ok", 200),
            ("degraded", 200),
            ("backpressure", 429),
            ("shed", 503),
            ("invalid", 400),
            ("error", 500),
        ],
    )
    def test_http_status_mapping(self, status, code):
        assert response_http_status(make_response(status))[0] == code

    def test_every_status_has_a_mapping(self):
        for status in RESPONSE_STATUSES:
            code, reason = response_http_status({"status": status})
            assert 200 <= code < 600 and reason
