"""HTTP transport: framing, routes, status codes, keep-alive."""

import asyncio
import json

from repro.service.app import _handle_http
from repro.service.engine import Engine

WORKLOAD = "locks_mutex_counter_t2"


def http_roundtrip(tmp_path, requests):
    """Serve one engine over a real socket; returns [(code, body), ...]."""

    async def main():
        engine = Engine(tmp_path / "svc", workers=2)
        await engine.startup()
        server = await asyncio.start_server(
            lambda r, w: _handle_http(engine, r, w), "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        results = []
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for method, path, body in requests:
                payload = body.encode() if body else b""
                writer.write(
                    (
                        f"{method} {path} HTTP/1.1\r\n"
                        f"Host: localhost\r\n"
                        f"Content-Length: {len(payload)}\r\n\r\n"
                    ).encode()
                    + payload
                )
                await writer.drain()
                status_line = await reader.readline()
                code = int(status_line.split()[1])
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode().partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value)
                results.append((code, json.loads(await reader.readexactly(length))))
            writer.close()
            await writer.wait_closed()
        finally:
            server.close()
            await server.wait_closed()
            await engine.shutdown(drain_s=2.0)
        return results

    return asyncio.run(main())


def test_analyze_stats_and_health_over_one_connection(tmp_path):
    analyze = json.dumps(
        {
            "v": 1,
            "tenant": "t",
            "kind": "workload",
            "workload": WORKLOAD,
            "seed": 1,
            "max_steps": 60_000,
        }
    )
    results = http_roundtrip(
        tmp_path,
        [
            ("GET", "/healthz", None),
            ("POST", "/v1/analyze", analyze),
            ("POST", "/v1/analyze", analyze),  # keep-alive: same socket
            ("GET", "/v1/stats", None),
        ],
    )
    (h_code, health), (a_code, first), (b_code, second), (s_code, stats) = results
    assert h_code == 200 and health["ok"] is True
    assert a_code == 200 and first["status"] == "ok"
    assert b_code == 200 and second["cached"] is True
    assert second["verdict"]["fingerprint"] == first["verdict"]["fingerprint"]
    assert s_code == 200 and stats["executed"] == 1


def test_error_routes_map_to_http_codes(tmp_path):
    results = http_roundtrip(
        tmp_path,
        [
            ("POST", "/v1/analyze", "{not json"),
            ("POST", "/v1/analyze", json.dumps({"v": 99})),
            ("GET", "/no/such/route", None),
        ],
    )
    codes = [code for code, _ in results]
    assert codes == [400, 400, 400]
    assert all(body["status"] == "invalid" for _, body in results)
    assert "v=1" in results[1][1]["error"]
