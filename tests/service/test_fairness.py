"""Admission fairness: token buckets, round-robin lanes, tenant-fair shed.

Both primitives take explicit ``now`` timestamps, so every decision
here is exact — no sleeps, no tolerance windows.
"""

from repro.service.fairness import AdmissionQueue, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        b = TokenBucket(rate=1.0, burst=3.0)
        assert [b.take(t) for t in (1.0, 1.0, 1.0)] == [True, True, True]
        assert b.take(1.0) is False

    def test_refills_at_rate(self):
        b = TokenBucket(rate=2.0, burst=2.0)
        assert b.take(0.5) and b.take(0.5)
        assert not b.take(0.5)
        # 0.5s at 2 tokens/s refills exactly one token.
        assert b.take(1.0)
        assert not b.take(1.0)

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=2.0)
        b.take(1.0)
        # A long idle period must not bank more than the burst.
        assert [b.take(1000.0) for _ in range(3)] == [True, True, False]

    def test_retry_after_reflects_deficit(self):
        b = TokenBucket(rate=2.0, burst=1.0)
        assert b.retry_after_s() == 0.0
        b.take(1.0)
        assert abs(b.retry_after_s() - 0.5) < 1e-9  # 1 token at 2/s


class TestAdmissionQueue:
    def queue(self, **kw):
        kw.setdefault("depth", 8)
        kw.setdefault("tenant_rate", 1000.0)
        kw.setdefault("tenant_burst", 1000.0)
        return AdmissionQueue(**kw)

    def test_round_robin_across_tenants(self):
        q = self.queue()
        for item in ("a1", "a2", "a3"):
            q.push("a", item, now=1.0)
        for item in ("b1", "b2"):
            q.push("b", item, now=1.0)
        # Tenant a queued first and more, but service alternates.
        assert [q.pop() for _ in range(5)] == ["a1", "b1", "a2", "b2", "a3"]
        assert q.pop() is None

    def test_depth_bound_refuses(self):
        q = self.queue(depth=2)
        assert q.push("a", 1, now=1.0) == (True, 0.0)
        assert q.push("b", 2, now=1.0) == (True, 0.0)
        ok, retry_after = q.push("c", 3, now=1.0)
        assert not ok and retry_after > 0
        assert q.refused == 1 and len(q) == 2

    def test_rate_limit_refuses_with_retry_after(self):
        q = self.queue(tenant_rate=1.0, tenant_burst=1.0)
        assert q.push("a", 1, now=1.0)[0]
        ok, retry_after = q.push("a", 2, now=1.0)
        assert not ok and retry_after > 0
        # The other tenant's bucket is untouched.
        assert q.push("b", 3, now=1.0)[0]

    def test_requeue_bypasses_admission(self):
        q = self.queue(depth=1, tenant_rate=1e-9, tenant_burst=1e-9)
        assert not q.push("a", 1, now=1.0)[0]
        q.requeue("a", "drained-1")  # already-accepted work is never bounced
        q.requeue("a", "drained-2")
        assert len(q) == 2
        assert q.pop() == "drained-1"

    def test_shed_takes_from_longest_lane_newest_first(self):
        q = self.queue()
        for item in ("a1", "a2", "a3", "a4"):
            q.push("a", item, now=1.0)
        q.push("b", "b1", now=1.0)
        dropped = q.shed(3)
        # Tenant a (4 queued) absorbs all of it, tail first; tenant b's
        # single request survives.
        assert dropped == ["a4", "a3", "a2"]
        assert q.shed_count == 3
        assert sorted([q.pop(), q.pop()]) == ["a1", "b1"]

    def test_shed_more_than_queued(self):
        q = self.queue()
        q.push("a", "a1", now=1.0)
        assert q.shed(10) == ["a1"]
        assert q.shed(1) == []

    def test_drain_returns_everything_in_service_order(self):
        q = self.queue()
        q.push("a", "a1", now=1.0)
        q.push("b", "b1", now=1.0)
        q.push("a", "a2", now=1.0)
        assert q.drain() == ["a1", "b1", "a2"]
        assert len(q) == 0

    def test_counters(self):
        q = self.queue(depth=1)
        q.push("a", 1, now=1.0)
        q.push("a", 2, now=1.0)
        assert q.pushed == 1 and q.refused == 1
