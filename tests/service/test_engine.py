"""Engine behavior: golden fingerprint identity, crash recovery, admission.

The acceptance bar for the whole service is here: a verdict served over
the wire must be ``Report.fingerprint()``-identical (sha256 wire form)
to a direct in-process ``repro.run`` of the same submission — across
presets, for program cells and trace uploads, cold, cached, and
degraded alike.
"""

import asyncio
import base64

import pytest

import repro
from repro.isa.asm import assemble
from repro.service.engine import FORCE_PRESSURE_ENV, Engine
from repro.service.schema import validate_request

WORKLOAD = "locks_mutex_counter_t2"
MAX_STEPS = 60_000
PRESETS = ("drd", "eraser", "helgrind-lib-spin7")

RACY_SOURCE = """\
program racy entry=main
global COUNT size=1 init=0
func worker() {
entry:
    a = addr COUNT
    v = load a+0
    one = const 1
    n = add v, one
    store a+0, n
    ret
}
func main() {
entry:
    t1 = spawn worker()
    t2 = spawn worker()
    join t1
    join t2
    halt
}
"""


def req(seed=1, tenant="team-a", tool="helgrind-lib-spin7", **over):
    base = {
        "v": 1,
        "tenant": tenant,
        "kind": "workload",
        "workload": WORKLOAD,
        "tool": tool,
        "seed": seed,
        "max_steps": MAX_STEPS,
    }
    base.update(over)
    return base


def run_engine(work_dir, fn, **engine_kwargs):
    """Start an engine, run ``fn(engine)`` in its loop, shut down."""
    engine_kwargs.setdefault("workers", 2)

    async def main():
        engine = Engine(work_dir, **engine_kwargs)
        await engine.startup()
        try:
            return await fn(engine)
        finally:
            await engine.shutdown(drain_s=2.0)

    return asyncio.run(main())


def direct_fingerprint(tool, seed=1):
    return repro.run(WORKLOAD, tool, seed=seed, max_steps=MAX_STEPS).fingerprint


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """An RPRT-framed recording of the test workload, as a store file."""
    from repro.harness.registry import resolve_workload
    from repro.trace import TraceStore, record_trace

    wl = resolve_workload(WORKLOAD)
    trace = record_trace(wl.fresh_program(), seed=2, max_steps=MAX_STEPS)
    root = tmp_path_factory.mktemp("svc-recording")
    TraceStore(root).put("k" * 64, trace)
    return root / ("k" * 64 + ".trc")


class TestGoldenIdentity:
    def test_workload_verdicts_match_direct_runs_across_presets(self, tmp_path):
        async def submit_all(engine):
            return {
                tool: await engine.submit(req(tool=tool)) for tool in PRESETS
            }

        responses = run_engine(tmp_path / "svc", submit_all)
        for tool, resp in responses.items():
            assert resp["status"] == "ok", resp
            assert resp["verdict"]["fingerprint"] == direct_fingerprint(tool)
            assert resp["verdict"]["seed"] == 1

    def test_trace_upload_verdicts_match_direct_runs_across_presets(
        self, tmp_path, trace_file
    ):
        payload = base64.b64encode(trace_file.read_bytes()).decode("ascii")

        async def submit_all(engine):
            return {
                tool: await engine.submit(
                    {
                        "v": 1,
                        "tenant": "team-b",
                        "kind": "trace",
                        "trace_b64": payload,
                        "tool": tool,
                    }
                )
                for tool in PRESETS
            }

        responses = run_engine(tmp_path / "svc", submit_all)
        for tool, resp in responses.items():
            assert resp["status"] == "ok", resp
            direct = repro.run(config=tool, trace=trace_file)
            assert resp["verdict"]["fingerprint"] == direct.fingerprint

    def test_source_verdict_matches_direct_run(self, tmp_path):
        async def submit(engine):
            return await engine.submit(
                {
                    "v": 1,
                    "tenant": "t",
                    "kind": "source",
                    "source": RACY_SOURCE,
                    "tool": "drd",
                    "seed": 1,
                    "max_steps": 10_000,
                }
            )

        resp = run_engine(tmp_path / "svc", submit)
        assert resp["status"] == "ok", resp
        direct = repro.run(assemble(RACY_SOURCE), "drd", seed=1, max_steps=10_000)
        assert resp["verdict"]["fingerprint"] == direct.fingerprint
        assert resp["verdict"]["racy_contexts"] >= 1

    def test_degraded_mode_is_fingerprint_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FORCE_PRESSURE_ENV, "degraded")

        async def submit(engine):
            return await engine.submit(req(tool="eraser"))

        resp = run_engine(tmp_path / "svc", submit)
        assert resp["status"] == "degraded" and resp["degraded"] is True
        assert resp["verdict"]["fingerprint"] == direct_fingerprint("eraser")


class TestCachingAndCoalescing:
    def test_resubmission_serves_verdict_without_recompute(self, tmp_path):
        async def twice(engine):
            first = await engine.submit(req())
            second = await engine.submit(req())
            return first, second, engine.stats_snapshot()

        first, second, stats = run_engine(tmp_path / "svc", twice)
        assert first["status"] == "ok" and not first.get("cached")
        assert second["cached"] is True
        assert second["verdict"] == first["verdict"]
        assert stats["executed"] == 1 and stats["served_index"] == 1

    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        async def both(engine):
            a, b = await asyncio.gather(engine.submit(req()), engine.submit(req()))
            return a, b, engine.stats_snapshot()

        a, b, stats = run_engine(tmp_path / "svc", both)
        assert a["status"] == b["status"] == "ok"
        assert a["verdict"]["fingerprint"] == b["verdict"]["fingerprint"]
        assert stats["executed"] == 1 and stats["received"] == 2

    def test_restart_serves_completed_verdicts_from_index(self, tmp_path):
        work = tmp_path / "svc"
        first = run_engine(work, lambda e: e.submit(req()))
        assert first["status"] == "ok"

        async def resubmit(engine):
            return await engine.submit(req()), engine.stats_snapshot()

        resp, stats = run_engine(work, resubmit)
        assert resp["cached"] is True
        assert resp["verdict"] == first["verdict"]
        assert stats["executed"] == 0  # zero recomputation across restart


class TestCrashRecovery:
    def test_restart_drains_journaled_inflight_requests(self, tmp_path):
        work = tmp_path / "svc"
        # Hand-craft the post-SIGKILL state: a request journaled as
        # accepted with no ``done`` — exactly what a crash mid-analysis
        # leaves behind.
        dead = Engine(work, workers=2)
        sub = validate_request(req())
        key, _, _ = dead._content_key(sub)
        dead.journal.accepted(key, dead._journal_request(sub, key))
        dead.journal.close()
        dead.pool.shutdown()

        async def wait_drained(engine):
            for _ in range(600):
                if key in engine.completed:
                    break
                await asyncio.sleep(0.05)
            return dict(engine.completed), engine.stats_snapshot()

        completed, stats = run_engine(work, wait_drained)
        assert stats["drained"] == 1 and stats["executed"] == 1
        assert completed[key]["status"] == "ok"
        assert completed[key]["verdict"]["fingerprint"] == direct_fingerprint(
            "helgrind-lib-spin7"
        )

    def test_unreconstructable_journal_entry_becomes_error_verdict(self, tmp_path):
        work = tmp_path / "svc"
        dead = Engine(work, workers=2)
        # A journaled trace request whose spool file is gone.
        dead.journal.accepted(
            "f" * 64, {"v": 1, "tenant": "t", "kind": "trace", "tool": "drd"}
        )
        dead.journal.close()
        dead.pool.shutdown()

        async def snapshot(engine):
            return dict(engine.completed), engine.stats_snapshot()

        completed, stats = run_engine(work, snapshot)
        assert completed["f" * 64]["status"] == "error"
        assert stats["drained"] == 0


class TestAdmission:
    def test_queue_depth_backpressure(self, tmp_path):
        async def flood(engine):
            return await asyncio.gather(
                *(engine.submit(req(seed=s)) for s in range(1, 5))
            )

        responses = run_engine(
            tmp_path / "svc", flood, workers=1, queue_depth=1
        )
        statuses = sorted(r["status"] for r in responses)
        assert statuses == ["backpressure", "backpressure", "backpressure", "ok"]
        for resp in responses:
            if resp["status"] == "backpressure":
                assert resp["retry_after_s"] > 0

    def test_tenant_rate_backpressure_is_per_tenant(self, tmp_path):
        async def two_tenants(engine):
            a1, a2, b1 = await asyncio.gather(
                engine.submit(req(seed=1, tenant="a")),
                engine.submit(req(seed=2, tenant="a")),
                engine.submit(req(seed=3, tenant="b")),
            )
            return a1, a2, b1

        a1, a2, b1 = run_engine(
            tmp_path / "svc",
            two_tenants,
            tenant_rate=1e-9,
            tenant_burst=1.0,
        )
        # Tenant a's second request is over rate; tenant b is untouched.
        assert a1["status"] == "ok"
        assert a2["status"] == "backpressure"
        assert b1["status"] == "ok"

    def test_critical_pressure_sheds_queued_work(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FORCE_PRESSURE_ENV, "critical")

        async def submit(engine):
            return await engine.submit(req()), engine.stats_snapshot()

        resp, stats = run_engine(tmp_path / "svc", submit)
        assert resp["status"] == "shed"
        assert resp["retry_after_s"] > 0
        assert stats["shed"] == 1 and stats["executed"] == 0

    def test_invalid_requests_get_structured_rejection(self, tmp_path):
        async def submit(engine):
            return (
                await engine.submit("not an object"),
                await engine.submit({"v": 1}),
                await engine.submit(req(workload="no-such-workload")),
            )

        not_obj, missing, unknown = run_engine(tmp_path / "svc", submit)
        assert not_obj["status"] == missing["status"] == unknown["status"] == "invalid"
        assert "error" in unknown
