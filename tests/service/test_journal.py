"""Request journal: fsynced fold, torn-tail truncation, upload spool."""

import json

import pytest

from repro.service.journal import RequestJournal

REQ = {"v": 1, "tenant": "t", "kind": "workload", "workload": "w"}
RESP = {"v": 1, "status": "ok", "verdict": {"fingerprint": "f" * 64}}


@pytest.fixture
def root(tmp_path):
    return tmp_path / "journal"


class TestFold:
    def test_empty(self, root):
        assert RequestJournal(root).load() == ({}, {})

    def test_accepted_without_done_is_pending(self, root):
        with RequestJournal(root) as j:
            j.accepted("k1", REQ)
        pending, completed = RequestJournal(root).load()
        assert pending == {"k1": REQ} and completed == {}

    def test_done_completes_and_clears_pending(self, root):
        with RequestJournal(root) as j:
            j.accepted("k1", REQ)
            j.done("k1", RESP)
        pending, completed = RequestJournal(root).load()
        assert pending == {} and completed == {"k1": RESP}

    def test_pending_preserves_acceptance_order(self, root):
        with RequestJournal(root) as j:
            for k in ("k3", "k1", "k2"):
                j.accepted(k, dict(REQ, id=k))
        pending, _ = RequestJournal(root).load()
        # The restart drain re-runs oldest-accepted first.
        assert list(pending) == ["k3", "k1", "k2"]

    def test_header_is_first_line(self, root):
        with RequestJournal(root) as j:
            j.accepted("k1", REQ)
        header = json.loads((root / "requests.jsonl").read_text().splitlines()[0])
        assert header["journal"] == "repro-service"


class TestCrashSafety:
    def _journal_with(self, root, tail_bytes):
        with RequestJournal(root) as j:
            j.accepted("k1", REQ)
            j.done("k1", RESP)
            j.accepted("k2", REQ)
        with open(root / "requests.jsonl", "ab") as fh:
            fh.write(tail_bytes)

    @pytest.mark.parametrize(
        "tail",
        [
            b'{"op": "accepted", "key": "k3", "requ',  # torn mid-line
            b'{"op": "accepted"}\n',                   # structurally torn
            b'{"op": "???", "key": "k3"}\n',           # unknown op
            b"\xff\xfe garbage\n",                     # not UTF-8 JSON
        ],
    )
    def test_torn_tail_is_truncated_not_fatal(self, root, tail):
        self._journal_with(root, tail)
        j = RequestJournal(root)
        pending, completed = j.load()
        assert pending == {"k2": REQ} and completed == {"k1": RESP}
        # Appending after the truncation keeps a well-formed journal.
        j.accepted("k3", REQ)
        j.close()
        pending, completed = RequestJournal(root).load()
        assert set(pending) == {"k2", "k3"}

    def test_unterminated_valid_json_is_torn(self, root):
        # Valid JSON but the crash ate the newline: fold must not trust it.
        self._journal_with(root, b'{"op": "done", "key": "k2", "response": {}}')
        pending, completed = RequestJournal(root).load()
        assert "k2" in pending and completed == {"k1": RESP}

    def test_foreign_header_rotates_stale(self, root):
        root.mkdir(parents=True)
        (root / "requests.jsonl").write_text(
            '{"journal": "repro-service", "version": 999, "schema": 1}\n'
            '{"op": "accepted", "key": "k1", "request": {}}\n'
        )
        assert RequestJournal(root).load() == ({}, {})
        assert (root / "requests.jsonl.stale").exists()


class TestUploadSpool:
    def test_spool_and_lookup(self, root):
        j = RequestJournal(root)
        dest = j.spool_upload("k1", b"RPRT-payload")
        assert dest.read_bytes() == b"RPRT-payload"
        assert j.upload_path("k1") == dest
        assert j.upload_path("k2") is None
        assert j.spool_bytes() == len(b"RPRT-payload")

    def test_spool_is_idempotent(self, root):
        j = RequestJournal(root)
        j.spool_upload("k1", b"first")
        j.spool_upload("k1", b"second would differ")
        # Content-keyed: identical key means identical payload, the
        # first durable copy wins.
        assert j.upload_path("k1").read_bytes() == b"first"

    def test_no_tmp_droppings(self, root):
        j = RequestJournal(root)
        j.spool_upload("k1", b"RPRT")
        assert list(j.uploads.glob("*.tmp")) == []
