"""Natural loop discovery tests."""

from repro.isa.builder import FunctionBuilder
from repro.analysis.loops import find_loops


def _simple_spin():
    fb = FunctionBuilder("f")
    fb.jmp("head")
    fb.label("head")
    a = fb.const(0x1000)
    v = fb.load(a)
    ok = fb.eq(v, 1)
    fb.br(ok, "after", "body")
    fb.label("body")
    fb.yield_()
    fb.jmp("head")
    fb.label("after")
    fb.ret()
    return fb.build()


class TestFindLoops:
    def test_single_loop_found(self):
        loops = find_loops(_simple_spin())
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "head"
        assert loop.body == frozenset({"head", "body"})
        assert loop.back_edge == ("body", "head")

    def test_exit_edges(self):
        loop = find_loops(_simple_spin())[0]
        assert len(loop.exit_edges) == 1
        branch_loc, target = loop.exit_edges[0]
        assert branch_loc.block == "head"
        assert target == "after"

    def test_no_loops_in_straight_line(self):
        fb = FunctionBuilder("f")
        fb.nop(3)
        fb.ret()
        assert find_loops(fb.build()) == []

    def test_nested_loops(self):
        fb = FunctionBuilder("f")
        fb.jmp("outer")
        fb.label("outer")
        c = fb.const(1)
        fb.br(c, "inner", "exit")
        fb.label("inner")
        d = fb.const(1)
        fb.br(d, "inner", "outer_latch")
        fb.label("outer_latch")
        fb.jmp("outer")
        fb.label("exit")
        fb.ret()
        loops = find_loops(fb.build())
        headers = sorted(l.header for l in loops)
        assert headers == ["inner", "outer"]
        inner = next(l for l in loops if l.header == "inner")
        outer = next(l for l in loops if l.header == "outer")
        assert inner.body < outer.body

    def test_same_header_loops_not_merged(self):
        """Two back edges to one header (retry pattern) stay distinct —
        this is what lets the inner pure spin loop of sem_wait qualify."""
        fb = FunctionBuilder("f")
        fb.jmp("head")
        fb.label("head")
        a = fb.const(0x1000)
        v = fb.load(a)
        ok = fb.eq(v, 0)
        fb.br(ok, "grab", "body")
        fb.label("body")
        fb.yield_()
        fb.jmp("head")
        fb.label("grab")
        old = fb.atomic_cas(a, 0, 1)
        won = fb.eq(old, 0)
        fb.br(won, "done", "head")
        fb.label("done")
        fb.ret()
        loops = find_loops(fb.build())
        bodies = {l.body for l in loops}
        # One loop per back edge: the pure spin loop {head, body} and the
        # CAS retry loop {head, grab} stay separate.
        assert frozenset({"head", "body"}) in bodies
        assert frozenset({"head", "grab"}) in bodies

    def test_self_loop(self):
        fb = FunctionBuilder("f")
        fb.jmp("s")
        fb.label("s")
        c = fb.const(1)
        fb.br(c, "s", "out")
        fb.label("out")
        fb.ret()
        loops = find_loops(fb.build())
        assert any(l.body == frozenset({"s"}) for l in loops)

    def test_library_primitives_each_have_spin_loop(self):
        from repro.runtime import build_library

        lib = build_library()
        for name in ("spinlock_acquire", "mutex_lock", "cv_wait", "barrier_wait", "sem_wait"):
            loops = find_loops(lib.functions[name])
            assert any(
                l.body == frozenset({"spin_head", "spin_body"}) for l in loops
            ), name
