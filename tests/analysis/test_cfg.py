"""CFG construction, reverse postorder, dominators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import instructions as ins
from repro.isa.builder import FunctionBuilder
from repro.isa.program import BasicBlock, Function
from repro.analysis.cfg import (
    build_cfg,
    dominates,
    dominators,
    reverse_postorder,
)


def _diamond() -> Function:
    """entry -> (left|right) -> merge -> exit"""
    fb = FunctionBuilder("f")
    c = fb.const(1)
    fb.br(c, "left", "right")
    fb.label("left")
    fb.jmp("merge")
    fb.label("right")
    fb.jmp("merge")
    fb.label("merge")
    fb.ret()
    return fb.build()


def _loop() -> Function:
    fb = FunctionBuilder("f")
    fb.jmp("head")
    fb.label("head")
    c = fb.const(1)
    fb.br(c, "body", "exit")
    fb.label("body")
    fb.jmp("head")
    fb.label("exit")
    fb.ret()
    return fb.build()


class TestCfg:
    def test_diamond_successors(self):
        cfg = build_cfg(_diamond())
        assert set(cfg.successors["entry"]) == {"left", "right"}
        assert cfg.successors["left"] == ("merge",)
        assert cfg.successors["merge"] == ()

    def test_diamond_predecessors(self):
        cfg = build_cfg(_diamond())
        assert set(cfg.predecessors["merge"]) == {"left", "right"}
        assert cfg.predecessors["entry"] == ()

    def test_branch_with_equal_arms_single_successor(self):
        fb = FunctionBuilder("f")
        c = fb.const(0)
        fb.br(c, "next", "next")
        fb.label("next")
        fb.ret()
        cfg = build_cfg(fb.build())
        assert cfg.successors["entry"] == ("next",)


class TestReversePostorder:
    def test_entry_first(self):
        cfg = build_cfg(_diamond())
        rpo = reverse_postorder(cfg)
        assert rpo[0] == "entry"
        assert rpo[-1] == "merge"

    def test_unreachable_blocks_excluded(self):
        f = _diamond()
        f.add_block(BasicBlock("island", [ins.Ret(None)]))
        rpo = reverse_postorder(build_cfg(f))
        assert "island" not in rpo

    def test_loop_order(self):
        cfg = build_cfg(_loop())
        rpo = reverse_postorder(cfg)
        assert rpo.index("head") < rpo.index("body")


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = build_cfg(_diamond())
        idom = dominators(cfg)
        for b in ("left", "right", "merge"):
            assert dominates(idom, "entry", b)

    def test_merge_idom_is_entry(self):
        idom = dominators(build_cfg(_diamond()))
        assert idom["merge"] == "entry"

    def test_branch_arms_do_not_dominate_merge(self):
        idom = dominators(build_cfg(_diamond()))
        assert not dominates(idom, "left", "merge")
        assert not dominates(idom, "right", "merge")

    def test_loop_header_dominates_body(self):
        idom = dominators(build_cfg(_loop()))
        assert dominates(idom, "head", "body")
        assert not dominates(idom, "body", "head")

    def test_dominance_is_reflexive(self):
        idom = dominators(build_cfg(_loop()))
        for b in idom:
            assert dominates(idom, b, b)


# --- property-based: random CFGs ------------------------------------------


@st.composite
def random_function(draw):
    n = draw(st.integers(2, 8))
    labels = [f"b{i}" for i in range(n)]
    f = Function("f", entry="b0")
    for i, label in enumerate(labels):
        kind = draw(st.integers(0, 2))
        if kind == 0 or i == n - 1:
            body = [ins.Ret(None)]
        elif kind == 1:
            body = [ins.Jmp(draw(st.sampled_from(labels)))]
        else:
            body = [
                ins.Const("c", 1),
                ins.Br(
                    "c",
                    draw(st.sampled_from(labels)),
                    draw(st.sampled_from(labels)),
                ),
            ]
        f.add_block(BasicBlock(label, body))
    return f


@given(random_function())
@settings(max_examples=120, deadline=None)
def test_dominator_properties_on_random_cfgs(func):
    cfg = build_cfg(func)
    rpo = reverse_postorder(cfg)
    idom = dominators(cfg)
    # Every reachable block has an entry that dominates it.
    for b in rpo:
        assert dominates(idom, cfg.entry, b)
    # The idom of any non-entry block is reachable and distinct.
    for b, d in idom.items():
        if b == cfg.entry:
            assert d is None
        else:
            assert d in idom
            assert d != b
    # idom(b) strictly dominates b through every predecessor path:
    # a block's idom must dominate all its reachable predecessors' idoms
    # chains — checked via the definition: idom(b) dominates b.
    for b in rpo:
        if b != cfg.entry:
            assert dominates(idom, idom[b], b)


@given(random_function())
@settings(max_examples=60, deadline=None)
def test_rpo_contains_exactly_reachable_blocks(func):
    cfg = build_cfg(func)
    rpo = reverse_postorder(cfg)
    # Reachability by BFS must match.
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        nxt = []
        for b in frontier:
            for s in cfg.successors[b]:
                if s not in seen:
                    seen.add(s)
                    nxt.append(s)
        frontier = nxt
    assert set(rpo) == seen
    assert len(rpo) == len(set(rpo))
