"""The spinning-read-loop detector: every criterion, accept and reject."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.analysis import SpinLoopDetector, instrument_program
from repro.workloads.common import (
    make_condition_helper,
    spin_flag_2bb,
    spin_two_flags_3bb,
    spin_with_funcptr,
    spin_with_helper,
)


def _program_with(main_body, extra=None):
    pb = ProgramBuilder("t")
    pb.global_("FLAG", 2)
    if extra:
        extra(pb)
    mn = pb.function("main")
    main_body(pb, mn)
    mn.halt()
    return pb.build()


def _detect(prog, k=7, depth=1):
    return SpinLoopDetector(prog, max_blocks=k, inline_depth=depth).detect_program()


class TestAccepts:
    def test_canonical_2bb_loop(self):
        prog = _program_with(lambda pb, mn: spin_flag_2bb(mn, mn.addr("FLAG")))
        spins = _detect(prog)
        assert len(spins) == 1
        assert spins[0].effective_blocks == 2
        assert len(spins[0].cond_load_locs) == 1

    def test_two_flag_3bb_loop_marks_both_loads(self):
        prog = _program_with(
            lambda pb, mn: spin_two_flags_3bb(mn, mn.addr("FLAG"), 0, 1)
        )
        spins = _detect(prog)
        assert len(spins) == 1
        assert spins[0].effective_blocks == 3
        # Both flag loads feed the exit decision (control dependence).
        assert len(spins[0].cond_load_locs) == 2

    def test_invariant_register_condition(self):
        """mutex-style: condition compares a load against a pre-loop reg."""

        def body(pb, mn):
            target = mn.const(3)
            f = mn.addr("FLAG")
            mn.jmp("head")
            mn.label("head")
            v = mn.load(f)
            ok = mn.eq(v, target)
            mn.br(ok, "after", "spin")
            mn.label("spin")
            mn.yield_()
            mn.jmp("head")
            mn.label("after")

        assert len(_detect(_program_with(body))) == 1

    def test_helper_condition_inlined(self):
        def extra(pb):
            make_condition_helper(pb, "chk", 5)

        prog = _program_with(
            lambda pb, mn: spin_with_helper(mn, "chk", mn.addr("FLAG")), extra
        )
        spins = _detect(prog, k=7)
        assert len(spins) == 1
        assert spins[0].effective_blocks == 7
        assert spins[0].inlined_callees == ("chk",)
        assert spins[0].cond_load_locs  # the helper's load is marked

    def test_negated_condition(self):
        def body(pb, mn):
            f = mn.addr("FLAG")
            mn.jmp("head")
            mn.label("head")
            v = mn.load(f)
            busy = mn.ne(v, 0)
            stop = mn.not_(busy)
            mn.br(stop, "after", "spin")
            mn.label("spin")
            mn.yield_()
            mn.jmp("head")
            mn.label("after")

        assert len(_detect(_program_with(body))) == 1

    def test_library_spin_loops_detected(self):
        from repro.runtime import build_library

        lib = build_library()
        det = SpinLoopDetector(lib, max_blocks=7)
        detected = {s.loop.function for s in det.detect_program()}
        assert detected == {
            "spinlock_acquire",
            "mutex_lock",
            "cv_wait",
            "barrier_wait",
            "sem_wait",
        }


class TestWindow:
    @pytest.mark.parametrize("helper_blocks,detected_at", [(2, 4), (3, 5), (5, 7)])
    def test_effective_size_is_loop_plus_helper(self, helper_blocks, detected_at):
        def extra(pb):
            make_condition_helper(pb, "chk", helper_blocks)

        prog = _program_with(
            lambda pb, mn: spin_with_helper(mn, "chk", mn.addr("FLAG")), extra
        )
        assert len(_detect(prog, k=detected_at)) == 1
        assert len(_detect(prog, k=detected_at - 1)) == 0

    def test_oversized_rejected_at_8(self):
        def extra(pb):
            make_condition_helper(pb, "chk", 7)  # effective 9

        prog = _program_with(
            lambda pb, mn: spin_with_helper(mn, "chk", mn.addr("FLAG")), extra
        )
        assert len(_detect(prog, k=8)) == 0


class TestRejects:
    def test_store_in_loop_body(self):
        def body(pb, mn):
            f = mn.addr("FLAG")
            mn.jmp("head")
            mn.label("head")
            v = mn.load(f)
            mn.store(f, v, offset=1)  # the loop writes memory
            ok = mn.eq(v, 1)
            mn.br(ok, "after", "spin")
            mn.label("spin")
            mn.yield_()
            mn.jmp("head")
            mn.label("after")

        assert _detect(_program_with(body)) == []

    def test_no_load_in_condition(self):
        def body(pb, mn):
            c = mn.const(0)
            mn.jmp("head")
            mn.label("head")
            ok = mn.eq(c, 1)
            mn.br(ok, "after", "spin")
            mn.label("spin")
            mn.yield_()
            mn.jmp("head")
            mn.label("after")

        assert _detect(_program_with(body)) == []

    def test_function_pointer_condition_opaque(self):
        def extra(pb):
            make_condition_helper(pb, "chk", 2)

        prog = _program_with(
            lambda pb, mn: spin_with_funcptr(mn, "chk", mn.addr("FLAG")), extra
        )
        assert _detect(prog) == []

    def test_loop_carried_counter_condition(self):
        """'value of loop condition changed inside the loop' — rejected."""

        def body(pb, mn):
            f = mn.addr("FLAG")
            i = mn.reg("i")
            mn.emit(ins.Const(i, 0))
            mn.jmp("head")
            mn.label("head")
            v = mn.load(f)
            got = mn.ne(v, 0)
            timeout = mn.gt(i, mn.const(1_000_000))
            stop = mn.or_(got, timeout)
            mn.br(stop, "after", "spin")
            mn.label("spin")
            mn.emit(ins.Mov(i, mn.add(i, 1)))
            mn.yield_()
            mn.jmp("head")
            mn.label("after")

        assert _detect(_program_with(body)) == []

    def test_impure_helper_rejected(self):
        def extra(pb):
            h = pb.function("chk", params=("f",))
            v = h.load("f")
            h.store("f", v, offset=1)  # helper writes memory
            h.ret(h.eq(v, 1))

        prog = _program_with(
            lambda pb, mn: spin_with_helper(mn, "chk", mn.addr("FLAG")), extra
        )
        assert _detect(prog) == []

    def test_deep_call_chain_beyond_inline_depth(self):
        def extra(pb):
            inner = pb.function("inner", params=("f",))
            inner.ret(inner.eq(inner.load("f"), 1))
            outer = pb.function("outer", params=("f",))
            outer.ret(outer.call("inner", ["f"], want_result=True))

        prog = _program_with(
            lambda pb, mn: spin_with_helper(mn, "outer", mn.addr("FLAG")), extra
        )
        assert _detect(prog, depth=1) == []
        assert len(_detect(prog, depth=2)) == 1

    def test_recursive_helper_rejected(self):
        def extra(pb):
            h = pb.function("chk", params=("f",))
            h.ret(h.call("chk", ["f"], want_result=True))

        prog = _program_with(
            lambda pb, mn: spin_with_helper(mn, "chk", mn.addr("FLAG")), extra
        )
        assert _detect(prog, depth=5) == []

    def test_counting_data_loop_not_marked(self):
        """A reduce loop (load + accumulate into a loop-carried register)
        is not a spin loop: its exit depends on the counter."""

        def body(pb, mn):
            f = mn.addr("FLAG")
            i = mn.reg("i")
            acc = mn.reg("acc")
            mn.emit(ins.Const(i, 0))
            mn.emit(ins.Const(acc, 0))
            mn.jmp("head")
            mn.label("head")
            v = mn.load(f)
            mn.emit(ins.Mov(acc, mn.add(acc, v)))
            mn.emit(ins.Mov(i, mn.add(i, 1)))
            c = mn.lt(i, mn.const(10))
            mn.br(c, "head", "after")
            mn.label("after")
            mn.print_(acc)

        assert _detect(_program_with(body)) == []

    def test_loop_with_spawn_rejected(self):
        def extra(pb):
            w = pb.function("w")
            w.ret()

        def body(pb, mn):
            f = mn.addr("FLAG")
            mn.jmp("head")
            mn.label("head")
            mn.emit(ins.Spawn(mn.reg(), "w", ()))
            v = mn.load(f)
            ok = mn.eq(v, 1)
            mn.br(ok, "after", "head")
            mn.label("after")

        assert _detect(_program_with(body, extra)) == []


class TestInstrumentationMap:
    def test_map_contents(self):
        prog = _program_with(lambda pb, mn: spin_flag_2bb(mn, mn.addr("FLAG")))
        imap = instrument_program(prog, max_blocks=7)
        assert imap.num_loops == 1
        assert len(imap.loop_headers) == 1
        assert len(imap.cond_loads) == 1
        assert len(imap.exit_edges) == 1
        (func, header), loop_id = next(iter(imap.loop_headers.items()))
        assert func == "main"
        assert loop_id == 0

    def test_memory_words_positive(self):
        prog = _program_with(lambda pb, mn: spin_flag_2bb(mn, mn.addr("FLAG")))
        imap = instrument_program(prog)
        assert imap.memory_words() > 0

    def test_empty_program_empty_map(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        mn.halt()
        imap = instrument_program(pb.build())
        assert imap.num_loops == 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_property_loops_with_stores_never_marked(seed):
    """Invariant: no loop containing a store is ever classified as a
    spinning read loop, for arbitrary store positions."""
    import random

    rng = random.Random(seed)
    pb = ProgramBuilder("t")
    pb.global_("FLAG", 2)
    mn = pb.function("main")
    f = mn.addr("FLAG")
    mn.jmp("head")
    mn.label("head")
    if rng.random() < 0.5:
        mn.store(f, mn.const(rng.randrange(5)), offset=1)
    v = mn.load(f)
    ok = mn.eq(v, 1)
    mn.br(ok, "after", "spin")
    mn.label("spin")
    if rng.random() < 0.5:
        mn.store(f, mn.const(rng.randrange(5)), offset=1)
    else:
        mn.yield_()
    mn.jmp("head")
    mn.label("after")
    mn.halt()
    prog = pb.build()
    spins = SpinLoopDetector(prog, max_blocks=8).detect_program()
    has_store_in_loop = any(
        isinstance(i, ins.Store)
        for label in ("head", "spin")
        for i in prog.functions["main"].blocks[label].instructions
    )
    if has_store_in_loop:
        assert spins == []
    else:
        assert len(spins) == 1
