"""Condition slicing tests."""

from repro.isa import instructions as ins
from repro.isa.builder import FunctionBuilder
from repro.analysis.dataflow import condition_slice


def _loop_func():
    fb = FunctionBuilder("f")
    target = fb.const(1)  # defined outside the loop
    fb.jmp("head")
    fb.label("head")
    a = fb.const(0x1000)
    v = fb.load(a)
    doubled = fb.add(v, v)
    ok = fb.eq(doubled, target)
    fb.br(ok, "after", "body")
    fb.label("body")
    fb.yield_()
    fb.jmp("head")
    fb.label("after")
    fb.ret()
    return fb.build(), frozenset({"head", "body"}), ok, v, target


class TestConditionSlice:
    def test_load_reaches_condition(self):
        func, body, cond, v, target = _loop_func()
        sl = condition_slice(func, body, cond)
        assert len(sl.load_locs) == 1
        assert v in sl.regs

    def test_invariant_inputs_detected(self):
        func, body, cond, v, target = _loop_func()
        sl = condition_slice(func, body, cond)
        assert target in sl.invariant_inputs
        assert v not in sl.invariant_inputs

    def test_unrelated_instructions_excluded(self):
        fb = FunctionBuilder("f")
        fb.jmp("head")
        fb.label("head")
        a = fb.const(0x1000)
        noise = fb.load(a, offset=5)  # not part of the condition
        v = fb.load(a)
        ok = fb.eq(v, fb.const(1))
        fb.br(ok, "after", "body")
        fb.label("body")
        fb.yield_()
        fb.jmp("head")
        fb.label("after")
        fb.ret()
        func = fb.build()
        sl = condition_slice(func, frozenset({"head", "body"}), ok)
        assert len(sl.load_locs) == 1  # only the condition load
        assert noise not in sl.regs

    def test_call_target_recorded(self):
        fb = FunctionBuilder("f")
        fb.jmp("head")
        fb.label("head")
        a = fb.const(0x1000)
        r = fb.call("helper", [a], want_result=True)
        fb.br(r, "after", "body")
        fb.label("body")
        fb.jmp("head")
        fb.label("after")
        fb.ret()
        sl = condition_slice(fb.build(), frozenset({"head", "body"}), r)
        assert sl.call_targets == ("helper",)
        assert not sl.has_icall

    def test_icall_flagged(self):
        fb = FunctionBuilder("f")
        fp = fb.const(0x200000)
        fb.jmp("head")
        fb.label("head")
        r = fb.icall(fp, [], want_result=True)
        fb.br(r, "after", "body")
        fb.label("body")
        fb.jmp("head")
        fb.label("after")
        fb.ret()
        sl = condition_slice(fb.build(), frozenset({"head", "body"}), r)
        assert sl.has_icall

    def test_atomic_rmw_counts_as_load(self):
        fb = FunctionBuilder("f")
        a = fb.const(0x1000)
        fb.jmp("head")
        fb.label("head")
        old = fb.atomic_add(a, 0)
        ok = fb.eq(old, 1)
        fb.br(ok, "after", "head")
        fb.label("after")
        fb.ret()
        sl = condition_slice(fb.build(), frozenset({"head"}), ok)
        assert len(sl.load_locs) == 1
