"""Lock-acquire inference (the future-work extension)."""

from repro.analysis.lockinfer import (
    infer_lock_acquires,
    lock_site_locations,
)
from repro.isa.builder import ProgramBuilder
from repro.runtime import build_library
from repro.workloads.common import emit_user_lock_acquire, emit_user_lock_release


class TestStaticInference:
    def test_library_cas_locks_found(self):
        lib = build_library()
        lib.entry = "spinlock_acquire"
        funcs = {s.function for s in infer_lock_acquires(lib)}
        assert "spinlock_acquire" in funcs
        assert "taslock_acquire" in funcs

    def test_semaphore_cas_not_matched(self):
        """sem_wait's CAS has a dynamic expected value — not a 0->1 lock."""
        lib = build_library()
        funcs = {s.function for s in infer_lock_acquires(lib)}
        assert "sem_wait" not in funcs

    def test_ticket_mutex_not_matched(self):
        """Ticket locks acquire by fetch-add — outside the heuristic."""
        lib = build_library()
        funcs = {s.function for s in infer_lock_acquires(lib)}
        assert "mutex_lock" not in funcs

    def test_user_lock_found(self):
        pb = ProgramBuilder("t")
        pb.global_("LK", 1)
        mn = pb.function("main")
        lk = mn.addr("LK")
        emit_user_lock_acquire(mn, lk)
        emit_user_lock_release(mn, lk)
        mn.halt()
        sites = infer_lock_acquires(pb.build())
        assert len(sites) == 1
        assert sites[0].function == "main"

    def test_non_lock_cas_values_ignored(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1)
        mn = pb.function("main")
        g = mn.addr("G")
        mn.atomic_cas(g, 3, 7)  # not a 0->1 transition
        mn.halt()
        assert infer_lock_acquires(pb.build()) == []

    def test_reused_register_poisoned(self):
        """A register with multiple definitions is not a known constant."""
        from repro.isa import instructions as ins

        pb = ProgramBuilder("t")
        pb.global_("G", 1)
        mn = pb.function("main")
        g = mn.addr("G")
        e = mn.reg("e")
        mn.emit(ins.Const(e, 0))
        mn.emit(ins.Const(e, 5))  # redefined: no longer provably 0
        one = mn.const(1)
        mn.emit(ins.AtomicCas(mn.reg(), g, e, one, 0))
        mn.halt()
        assert infer_lock_acquires(pb.build()) == []

    def test_lock_site_locations_shape(self):
        lib = build_library()
        locs = lock_site_locations(lib)
        assert locs
        assert all(hasattr(l, "function") for l in locs)


class TestRuntimeInference:
    def _taslock_program(self):
        from repro.isa.instructions import Const, Mov
        from repro.workloads.common import counted_loop, new_program

        pb = new_program("tas")
        pb.global_("C", 1)
        pb.global_("T", 1)
        w = pb.function("worker")

        def body(fb, i):
            t = fb.addr("T")
            fb.call("taslock_acquire", [t])
            a = fb.addr("C")
            fb.store(a, fb.add(fb.load(a), 1))
            fb.call("taslock_release", [t])

        counted_loop(w, 4, body)
        w.ret()
        mn = pb.function("main")
        t1 = mn.spawn("worker", [])
        t2 = mn.spawn("worker", [])
        mn.join(t1)
        mn.join(t2)
        mn.halt()
        return pb.build()

    def _detect(self, config):
        from repro.analysis import instrument_program, lock_site_locations
        from repro.detectors import RaceDetector
        from repro.vm import Machine, RandomScheduler

        program = self._taslock_program()
        imap = (
            instrument_program(program, config.spin_max_blocks)
            if config.spin
            else None
        )
        sites = lock_site_locations(program) if config.infer_locks else frozenset()
        det = RaceDetector(config, lock_sites=sites)
        machine = Machine(
            program,
            scheduler=RandomScheduler(3),
            listener=det,
            instrumentation=imap,
        )
        det.algorithm.symbolize = machine.memory.symbols.resolve
        result = machine.run()
        assert result.ok
        return det

    def test_nolib_without_inference_fps_on_tas_data(self):
        from repro.detectors import ToolConfig

        det = self._detect(ToolConfig.helgrind_nolib_spin(7))
        assert "C" in det.report.reported_base_symbols

    def test_universal_hybrid_clean_on_tas_data(self):
        from repro.detectors import ToolConfig

        det = self._detect(ToolConfig.universal_hybrid(7))
        assert det.report.racy_contexts == 0

    def test_inferred_locks_registered(self):
        from repro.detectors import ToolConfig

        det = self._detect(ToolConfig.universal_hybrid(7))
        assert det.adhoc is not None and det.adhoc.inferred_locks
        # Lock released at end: nobody still holds it.
        assert all(not held for held in det.algorithm._held.values())

    def test_lock_sites_ignored_without_flag(self):
        """Passing lock sites without infer_locks must be inert."""
        from repro.analysis import lock_site_locations
        from repro.detectors import RaceDetector, ToolConfig

        program = self._taslock_program()
        det = RaceDetector(
            ToolConfig.helgrind_nolib_spin(7),
            lock_sites=lock_site_locations(program),
        )
        assert det.lock_sites == frozenset()
