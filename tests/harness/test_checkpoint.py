"""Journaled checkpoints: durability, torn tails, resume equivalence."""

import json

import pytest

from repro.detectors import ToolConfig
from repro.harness.checkpoint import (
    CACHE_SCHEMA,
    JOURNAL_VERSION,
    SweepJournal,
    spec_key,
    sweep_digest,
)
from repro.harness.parallel import (
    ResultCache,
    RunRecord,
    RunSpec,
    run_sweep,
    sweep_specs,
)
from repro.harness.workload import Workload

from tests.conftest import flag_handoff_program


def _record(workload="wl", status="ok", seed=1, steps=10):
    return RunRecord(
        workload=workload, tool="Helgrind+ lib", seed=seed, status=status, steps=steps
    )


def _specs():
    return sweep_specs(["blackscholes", "bodytrack"], ["helgrind-lib"], [1, 2])


#: fields of a RunRecord that must survive kill+resume bit-identically
#: (everything except wall-clock timings and the attempt counter)
STABLE_FIELDS = (
    "workload",
    "tool",
    "seed",
    "status",
    "steps",
    "events",
    "detector_words",
    "spin_loops",
    "adhoc_edges",
    "racy_contexts",
    "faults",
)


def stable(rec: RunRecord) -> tuple:
    status = "ok" if rec.status == "cached" else rec.status
    return (status,) + tuple(
        getattr(rec, f) for f in STABLE_FIELDS if f != "status"
    )


class TestKeysAndDigests:
    def test_spec_key_is_stable_and_content_sensitive(self):
        a = RunSpec("blackscholes", "helgrind-lib", 1)
        assert spec_key(a) == spec_key(a)
        assert spec_key(a) != spec_key(RunSpec("blackscholes", "helgrind-lib", 2))
        assert spec_key(a) != spec_key(RunSpec("bodytrack", "helgrind-lib", 1))

    def test_sweep_digest_is_order_insensitive(self):
        keys = [spec_key(s) for s in _specs()]
        assert sweep_digest(keys) == sweep_digest(list(reversed(keys)))
        assert sweep_digest(keys) != sweep_digest(keys[:-1])


class TestJournal:
    def test_append_then_load_round_trips(self, tmp_path):
        j = SweepJournal(tmp_path, "d" * 64)
        j.append("k1", _record(status="ok"))
        j.append("k2", _record(status="timeout", seed=2))
        j.close()
        loaded = SweepJournal(tmp_path, "d" * 64).load()
        assert set(loaded) == {"k1", "k2"}
        assert loaded["k1"].status == "ok"
        assert loaded["k2"].status == "timeout" and loaded["k2"].seed == 2

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        j = SweepJournal(tmp_path, "d" * 64)
        j.append("k1", _record())
        j.append("k2", _record(seed=2))
        j.close()
        # simulate a crash mid-append: garbage half-line at the tail
        with open(j.path, "ab") as fh:
            fh.write(b'{"key": "k3", "rec')
        loaded = SweepJournal(tmp_path, "d" * 64).load()
        assert set(loaded) == {"k1", "k2"}
        # the torn bytes are gone; appending continues on a clean boundary
        j2 = SweepJournal(tmp_path, "d" * 64)
        j2.append("k3", _record(seed=3))
        j2.close()
        assert set(SweepJournal(tmp_path, "d" * 64).load()) == {"k1", "k2", "k3"}

    def test_unreadable_garbage_tail_line(self, tmp_path):
        j = SweepJournal(tmp_path, "d" * 64)
        j.append("k1", _record())
        j.close()
        with open(j.path, "ab") as fh:
            fh.write(b"\xff\xfe not json\n")
        assert set(SweepJournal(tmp_path, "d" * 64).load()) == {"k1"}

    def test_mismatched_header_rotates_stale(self, tmp_path):
        j = SweepJournal(tmp_path, "a" * 64)
        j.append("k1", _record())
        j.close()
        other = SweepJournal(tmp_path, "a" * 64)
        other.digest = "b" * 64  # same path, different sweep identity
        assert other.load() == {}
        assert j.path.with_suffix(".jsonl.stale").exists()
        assert not j.path.exists()

    def test_header_pins_version_and_schema(self, tmp_path):
        j = SweepJournal(tmp_path, "c" * 64)
        j.append("k1", _record())
        j.close()
        header = json.loads(j.path.read_text().splitlines()[0])
        assert header == {
            "journal": "repro-sweep",
            "version": JOURNAL_VERSION,
            "schema": CACHE_SCHEMA,
            "sweep": "c" * 64,
        }

    def test_record_round_trip_ignores_unknown_keys(self, tmp_path):
        j = SweepJournal(tmp_path, "e" * 64)
        j.append("k1", _record())
        j.close()
        # a future RunRecord field must not break older readers
        lines = j.path.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["record"]["from_the_future"] = 42
        j.path.write_text("\n".join([lines[0], json.dumps(entry)]) + "\n")
        loaded = SweepJournal(tmp_path, "e" * 64).load()
        assert loaded["k1"].workload == "wl"


class TestResume:
    def test_fresh_run_then_full_resume(self, tmp_path):
        specs = _specs()
        r1 = run_sweep(specs, workers=0, journal_dir=tmp_path)
        assert r1.resumed == 0 and all(r.status == "ok" for r in r1.records)
        r2 = run_sweep(specs, workers=0, journal_dir=tmp_path, resume=True)
        assert r2.resumed == len(specs)
        assert [stable(a) for a in r1.records] == [stable(b) for b in r2.records]
        # resumed records are served verbatim, timing fields included
        assert [a.duration_s for a in r1.records] == [b.duration_s for b in r2.records]

    def test_partial_journal_reruns_only_the_tail(self, tmp_path):
        specs = _specs()
        baseline = run_sweep(specs, workers=0, journal_dir=tmp_path)
        # simulate a SIGKILL after two completions: keep header + 2 entries
        journal = SweepJournal(tmp_path, sweep_digest([spec_key(s) for s in specs]))
        lines = journal.path.read_text().splitlines()
        journal.path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_sweep(specs, workers=0, journal_dir=tmp_path, resume=True)
        assert resumed.resumed == 2
        assert [stable(a) for a in baseline.records] == [
            stable(b) for b in resumed.records
        ]
        # and the journal is whole again for the next resume
        assert run_sweep(
            specs, workers=0, journal_dir=tmp_path, resume=True
        ).resumed == len(specs)

    def test_resume_serves_cached_outcomes(self, tmp_path):
        specs = _specs()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(specs, workers=0, cache=cache, journal_dir=tmp_path / "j")
        r = run_sweep(
            specs, workers=0, cache=cache, journal_dir=tmp_path / "j", resume=True
        )
        assert r.resumed == len(specs)
        assert all(o is not None for o in r.outcomes)

    def test_without_resume_journal_is_rewritten(self, tmp_path):
        specs = _specs()
        run_sweep(specs, workers=0, journal_dir=tmp_path)
        r = run_sweep(specs, workers=0, journal_dir=tmp_path, resume=False)
        assert r.resumed == 0
        assert r.summary().executed == len(specs)

    def test_resume_without_journal_dir_raises(self):
        with pytest.raises(ValueError):
            run_sweep(_specs(), workers=0, resume=True)

    def test_parallel_resume_matches_serial_baseline(self, tmp_path):
        specs = _specs()
        baseline = run_sweep(specs, workers=0)
        run_sweep(specs, workers=2, journal_dir=tmp_path)
        resumed = run_sweep(specs, workers=2, journal_dir=tmp_path, resume=True)
        assert resumed.resumed == len(specs)
        assert [stable(a) for a in baseline.records] == [
            stable(b) for b in resumed.records
        ]


class TestInterrupt:
    def test_serial_keyboard_interrupt_keeps_partial_results(self, tmp_path):
        calls = {"n": 0}

        def flaky_build():
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return flag_handoff_program()

        wl_ok = Workload(name="ckpt_ok", build=flag_handoff_program, seed=1)
        wl_int = Workload(name="ckpt_interrupt", build=flaky_build, seed=1)
        specs = [
            RunSpec(wl_ok, ToolConfig.helgrind_lib(), 1),
            RunSpec(wl_int, ToolConfig.helgrind_lib(), 1),
            RunSpec(wl_ok, ToolConfig.helgrind_lib(), 2),
        ]
        # flaky_build is called once for key computation, once for the run
        result = run_sweep(
            specs, workers=0, journal_dir=tmp_path, strict=True
        )
        assert result.interrupted
        assert len(result.records) == 1 and result.records[0].status == "ok"
        # ... and the finished record was durably journaled
        files = list(tmp_path.glob("sweep-*.jsonl"))
        assert len(files) == 1
        lines = files[0].read_text().splitlines()
        assert len(lines) == 2  # header + the one completed record
