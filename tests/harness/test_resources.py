"""Resource-governance primitives: sizes, budgets, RSS sampling, retry.

These are the building blocks every governed layer (parallel runner,
result cache, trace store) leans on, so their edge cases are pinned
here once instead of re-derived per consumer.
"""

import errno

import pytest

from repro.harness import resources
from repro.harness.resources import (
    PressureReport,
    ResourceBudget,
    assess_pressure,
    current_rss_bytes,
    parse_size,
    peak_rss_bytes,
    retry_io,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("1024", 1024),
            ("4k", 4 << 10),
            ("256m", 256 << 20),
            ("256M", 256 << 20),
            ("256mb", 256 << 20),
            ("2g", 2 << 30),
            ("1t", 1 << 40),
            ("1.5g", int(1.5 * (1 << 30))),
            ("  512m  ", 512 << 20),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_none_and_int_pass_through(self):
        assert parse_size(None) is None
        assert parse_size(12345) == 12345

    @pytest.mark.parametrize("text", ["", "b", "much", "-1g", "1q", "g"])
    def test_garbage_raises(self, text):
        # A silently misparsed budget is worse than no budget.
        with pytest.raises(ValueError):
            parse_size(text)

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("", "empty size"),
            ("   ", "empty size"),
            ("b", "empty size"),        # bare suffix, no value
            ("1q", "cannot parse"),
            ("much", "cannot parse"),
            ("-1g", "negative size"),
        ],
    )
    def test_errors_name_the_offending_input(self, text, fragment):
        # The message must carry both the failure mode and the exact
        # input, so a bad --max-rss flag is diagnosable from the log.
        with pytest.raises(ValueError) as exc:
            parse_size(text)
        assert fragment in str(exc.value)
        assert repr(text) in str(exc.value)


class TestResourceBudget:
    def test_zero_value_is_ungoverned(self):
        assert not ResourceBudget().governed
        assert not ResourceBudget.of().governed

    def test_any_field_governs(self):
        assert ResourceBudget(max_rss_bytes=1).governed
        assert ResourceBudget(disk_quota_bytes=1).governed
        assert ResourceBudget(wall_budget_s=0.0).governed

    def test_of_parses_human_sizes(self):
        b = ResourceBudget.of("512m", "2g", 3600.0)
        assert b.max_rss_bytes == 512 << 20
        assert b.disk_quota_bytes == 2 << 30
        assert b.wall_budget_s == 3600.0


class TestRssSampling:
    def test_current_rss_is_plausible(self):
        rss = current_rss_bytes()
        # A running CPython interpreter is a few MB at minimum and well
        # under a TB; anything outside that is a units bug (pages vs
        # bytes vs kilobytes), the classic failure mode here.
        assert (1 << 20) < rss < (1 << 40)

    def test_peak_is_at_least_current(self):
        assert peak_rss_bytes() >= 0
        assert peak_rss_bytes() + (64 << 20) > current_rss_bytes()

    def test_rss_tracks_a_large_allocation(self):
        before = current_rss_bytes()
        buf = bytearray(32 << 20)
        for off in range(0, len(buf), resources._PAGE_SIZE):
            buf[off] = 1
        after = current_rss_bytes()
        del buf
        assert after - before > 24 << 20


class TestRetryIo:
    def _flaky(self, failures, err=errno.EAGAIN):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) <= failures:
                raise OSError(err, "transient")
            return "ok"

        return fn, calls

    def test_transient_errors_are_retried(self):
        fn, calls = self._flaky(2)
        sleeps = []
        assert retry_io(fn, attempts=3, sleep=sleeps.append) == "ok"
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_backoff_grows_with_jitter(self):
        fn, _ = self._flaky(2)
        sleeps = []
        retry_io(fn, attempts=3, base_delay_s=0.01, token="k", sleep=sleeps.append)
        assert 0.01 <= sleeps[0] < 0.02
        assert 0.02 <= sleeps[1] < 0.04
        assert sleeps[1] > sleeps[0]

    def test_backoff_is_deterministic_per_token(self):
        def run(token):
            fn, _ = self._flaky(2)
            sleeps = []
            retry_io(fn, attempts=3, token=token, sleep=sleeps.append)
            return sleeps

        assert run("a") == run("a")
        assert run("a") != run("b")

    def test_exhausted_retries_raise_the_last_error(self):
        fn, calls = self._flaky(99)
        with pytest.raises(OSError) as exc:
            retry_io(fn, attempts=3, sleep=lambda _s: None)
        assert exc.value.errno == errno.EAGAIN
        assert len(calls) == 3

    def test_structural_errors_propagate_immediately(self):
        # ENOSPC is the caller's degradation path, not a retry case.
        fn, calls = self._flaky(99, err=errno.ENOSPC)
        with pytest.raises(OSError):
            retry_io(fn, attempts=3, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_non_oserror_propagates(self):
        def fn():
            raise ValueError("not io")

        with pytest.raises(ValueError):
            retry_io(fn, attempts=3, sleep=lambda _s: None)


class TestBallastKnob:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv(resources.BALLAST_ENV, raising=False)
        assert resources.test_ballast_bytes(False) is None
        assert resources.test_ballast_bytes(True) is None

    def test_plain_value_skips_degraded_attempts(self, monkeypatch):
        monkeypatch.setenv(resources.BALLAST_ENV, "1")
        assert len(resources.test_ballast_bytes(False)) == 1 << 20
        assert resources.test_ballast_bytes(True) is None

    def test_bang_form_applies_to_degraded_attempts_too(self, monkeypatch):
        monkeypatch.setenv(resources.BALLAST_ENV, "1!")
        assert len(resources.test_ballast_bytes(False)) == 1 << 20
        assert len(resources.test_ballast_bytes(True)) == 1 << 20

    @pytest.mark.parametrize("raw", ["zero", "0", "-3", "!"])
    def test_garbage_values_are_inert(self, monkeypatch, raw):
        monkeypatch.setenv(resources.BALLAST_ENV, raw)
        assert resources.test_ballast_bytes(False) is None


class TestAssessPressure:
    BUDGET = ResourceBudget(max_rss_bytes=1000, disk_quota_bytes=1000)

    def sample(self, rss=0, disk=0, budget=BUDGET, **kw):
        return assess_pressure(budget, disk_bytes=disk, rss_bytes=rss, **kw)

    def test_no_budget_is_always_ok(self):
        report = assess_pressure(None, disk_bytes=10**18, rss_bytes=10**18)
        assert report.level == "ok"
        assert report.rss_frac is None and report.disk_frac is None
        assert not report.degraded and not report.critical

    def test_ungoverned_axes_report_no_fraction(self):
        report = self.sample(rss=900, disk=900, budget=ResourceBudget())
        assert report.level == "ok"
        assert report.rss_frac is None and report.disk_frac is None

    @pytest.mark.parametrize(
        "rss,level",
        [
            (0, "ok"),
            (749, "ok"),
            (750, "degraded"),   # inclusive degrade watermark (0.75)
            (919, "degraded"),
            (920, "critical"),   # inclusive shed watermark (0.92)
            (5000, "critical"),  # past 100% is still just critical
        ],
    )
    def test_rss_watermarks(self, rss, level):
        report = self.sample(rss=rss)
        assert report.level == level
        assert report.rss_frac == rss / 1000

    def test_disk_axis_alone_can_degrade_and_shed(self):
        assert self.sample(disk=800).level == "degraded"
        assert self.sample(disk=950).level == "critical"

    def test_worst_axis_wins(self):
        # Healthy RSS must not mask a critical disk spool, or vice versa.
        assert self.sample(rss=100, disk=950).level == "critical"
        assert self.sample(rss=950, disk=100).level == "critical"

    def test_custom_watermarks(self):
        report = self.sample(rss=600, degrade_at=0.5, shed_at=0.9)
        assert report.level == "degraded"
        assert self.sample(rss=950, degrade_at=0.5, shed_at=0.9).critical

    def test_degraded_property_covers_critical(self):
        # ``degraded`` means "not ok" — critical callers must also take
        # the low-memory path, on top of shedding.
        assert not self.sample(rss=100).degraded
        assert self.sample(rss=800).degraded and not self.sample(rss=800).critical
        assert self.sample(rss=990).degraded and self.sample(rss=990).critical

    def test_default_rss_is_sampled_from_this_process(self):
        # rss_bytes=None falls back to a live sample; a real interpreter
        # is megabytes, so an enormous budget stays "ok".
        report = assess_pressure(ResourceBudget(max_rss_bytes=1 << 50))
        assert report.level == "ok" and report.rss_bytes > (1 << 20)

    def test_report_is_a_pressure_report(self):
        assert isinstance(self.sample(), PressureReport)
