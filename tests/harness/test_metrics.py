"""Suite scoring and context averaging."""

from repro.detectors import ToolConfig
from repro.detectors.reports import AccessInfo, RaceWarning, Report
from repro.harness.metrics import (
    CaseScore,
    SuiteScore,
    racy_contexts_avg,
    score_case,
    score_suite,
)
from repro.harness.workload import Workload
from repro.isa.program import CodeLocation

from tests.conftest import flag_handoff_program


def _report_with(symbols, tool="t"):
    r = Report(tool)
    for i, s in enumerate(symbols):
        r.add(
            RaceWarning(
                addr=0x1000 + i,
                symbol=s,
                prev=AccessInfo(0, CodeLocation("f", "a", i), True),
                cur=AccessInfo(1, CodeLocation("g", "b", i), False),
                kind="write-read",
            )
        )
    return r


def _workload(racy=frozenset()):
    return Workload(name="w", build=flag_handoff_program, racy_symbols=racy)


class TestScoreCase:
    def test_race_free_clean_report(self):
        score = score_case(_workload(), _report_with([]))
        assert score.correct and not score.false_alarm and not score.missed_race

    def test_race_free_with_warning_is_false_alarm(self):
        score = score_case(_workload(), _report_with(["DATA"]))
        assert score.false_alarm and not score.missed_race
        assert score.false_symbols == ("DATA",)

    def test_racy_found(self):
        score = score_case(_workload(frozenset({"X"})), _report_with(["X"]))
        assert score.correct
        assert score.true_symbols == ("X",)

    def test_racy_missed(self):
        score = score_case(_workload(frozenset({"X"})), _report_with([]))
        assert score.missed_race and not score.false_alarm

    def test_offset_symbols_collapse_to_base(self):
        score = score_case(_workload(frozenset({"ARR"})), _report_with(["ARR+3"]))
        assert score.correct

    def test_racy_with_extra_false_symbol(self):
        score = score_case(_workload(frozenset({"X"})), _report_with(["X", "Y"]))
        assert score.false_alarm and not score.missed_race


class TestSuiteScore:
    def test_failed_is_fa_plus_mr(self):
        s = SuiteScore("t")
        s.cases = [
            CaseScore("a", "t", False, False),
            CaseScore("b", "t", True, False),
            CaseScore("c", "t", False, True),
            CaseScore("d", "t", True, True),
        ]
        assert s.false_alarms == 2
        assert s.missed_races == 2
        assert s.failed == 4  # paper convention: FA + MR
        assert s.correct == 1  # only 'a'

    def test_row_shape(self):
        s = SuiteScore("t")
        row = s.row()
        assert set(row) == {"tool", "false_alarms", "missed_races", "failed", "correct"}


class TestEndToEnd:
    def test_score_suite_runs_each_case(self):
        wls = [
            Workload(name=f"w{i}", build=flag_handoff_program, seed=i)
            for i in range(3)
        ]
        score, outcomes = score_suite(wls, ToolConfig.helgrind_lib_spin(7))
        assert score.total == 3
        assert len(outcomes) == 3
        assert score.correct == 3  # the handoff is race-free under spin

    def test_racy_contexts_avg(self):
        wl = Workload(name="w", build=flag_handoff_program)
        avg = racy_contexts_avg(wl, ToolConfig.helgrind_lib(), seeds=[1, 2, 3])
        assert avg > 0  # lib FPs on the ad-hoc flag program
        avg_spin = racy_contexts_avg(
            wl, ToolConfig.helgrind_lib_spin(7), seeds=[1, 2, 3]
        )
        assert avg_spin == 0
