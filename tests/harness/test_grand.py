"""The grand sweep engine (:mod:`repro.harness.grand`) and the shard
plumbing it rides on: ``RunSpec.shard`` dispatch, shard-aware cache
keys, journal resume at shard granularity, and the per-cell merge."""

import dataclasses

import pytest

from repro.harness.checkpoint import spec_key
from repro.harness.grand import (
    GrandCell,
    grand_cells_table,
    grand_specs,
    run_grand_sweep,
)
from repro.harness.parallel import ResultCache, RunSpec, run_sweep
from repro.harness.registry import resolve_tool
from repro.harness.runner import run_shard_offline
from repro.harness.tables import sweep_records_table
from repro.trace import TraceStore, analyze_trace, key_for_spec, record_trace

from tests.conftest import flag_handoff_program

TOOLS2 = ["helgrind-lib", "drd"]


class TestGrandSpecs:
    def test_cell_major_layout(self):
        specs = grand_specs(3, TOOLS2, suite_limit=2, include_chaos=False)
        assert len(specs) == 2 * 2 * 3
        for c in range(4):
            cell = specs[c * 3 : (c + 1) * 3]
            assert len({(s.workload, s.config, s.seed) for s in cell}) == 1
            assert [s.shard for s in cell] == ["0/3", "1/3", "2/3"]
            assert all(s.trace_mode == "replay" for s in cell)

    def test_chaos_cells_keep_their_fault_plans(self):
        specs = grand_specs(2, ["drd"], suite_limit=1, include_chaos=True)
        chaos = [s for s in specs if s.fault_plan or s.livelock_bound]
        assert chaos, "chaos cells missing from the grand spec list"
        assert all(s.trace_mode == "replay" for s in chaos)


class TestShardSpecPlumbing:
    def test_shard_units_have_distinct_cache_keys(self):
        spec = RunSpec(workload="adhoc7_handoff", config="drd", trace_mode="replay")
        keys = {
            spec_key(dataclasses.replace(spec, shard=f"{i}/2")) for i in range(2)
        }
        keys.add(spec_key(spec))
        assert len(keys) == 3

    def test_shard_requires_replay_mode(self, tmp_path):
        spec = RunSpec(
            workload="adhoc7_handoff", config="drd", shard="0/2", trace_mode="live"
        )
        result = run_sweep([spec], workers=0, trace_dir=tmp_path, retries=0)
        assert result.outcomes == [None]
        assert "replay" in result.records[0].error

    def test_malformed_shard_string_rejected(self):
        trace = record_trace(flag_handoff_program(), seed=2)
        with pytest.raises(ValueError, match="shard"):
            run_shard_offline(None, resolve_tool("drd"), trace, "2")

    def test_shard_sweep_outcomes_match_direct_analysis(self, tmp_path):
        spec = RunSpec(workload="adhoc7_handoff", config="drd", trace_mode="replay")
        shards = [dataclasses.replace(spec, shard=f"{i}/2") for i in range(2)]
        result = run_sweep(shards, workers=0, trace_dir=tmp_path)
        from repro.trace import merge_shard_reports

        merged = merge_shard_reports([o.report for o in result.outcomes])
        trace = TraceStore(tmp_path).get(key_for_spec(spec))
        base = analyze_trace(trace, resolve_tool("drd"))
        assert merged.fingerprint() == base.report.fingerprint()
        assert all(r.shard for r in result.records)

    def test_records_table_gains_a_shard_column_only_when_sharded(self, tmp_path):
        spec = RunSpec(workload="adhoc7_handoff", config="drd", trace_mode="replay")
        shards = [dataclasses.replace(spec, shard=f"{i}/2") for i in range(2)]
        sharded = run_sweep(shards, workers=0, trace_dir=tmp_path)
        assert "Shard" in sweep_records_table(sharded.records, "t")
        plain = run_sweep([spec], workers=0, trace_dir=tmp_path)
        assert "Shard" not in sweep_records_table(plain.records, "t")


class TestGrandSweep:
    def _run(self, tmp_path, **kw):
        kw.setdefault("shards", 2)
        kw.setdefault("workers", 0)
        kw.setdefault("configs", TOOLS2)
        kw.setdefault("suite_limit", 2)
        kw.setdefault("include_chaos", False)
        kw.setdefault("trace_dir", tmp_path / "traces")
        return run_grand_sweep(**kw)

    def test_every_cell_merges_and_verifies(self, tmp_path):
        result = self._run(tmp_path, verify_sample=4)
        assert len(result.cells) == 4
        assert not result.incomplete and not result.mismatched
        assert all(c.fingerprint for c in result.cells)
        assert [c.verified for c in result.cells] == [True] * 4

    def test_merged_fingerprints_equal_unsharded(self, tmp_path):
        result = self._run(tmp_path)
        store = TraceStore(tmp_path / "traces")
        specs = grand_specs(2, TOOLS2, suite_limit=2, include_chaos=False)
        for cell in result.cells:
            spec = specs[cell.index * 2]
            trace = store.get(key_for_spec(spec))
            base = analyze_trace(trace, resolve_tool(spec.config))
            assert cell.fingerprint == base.report.fingerprint()

    def test_journal_resume_restores_fingerprints(self, tmp_path):
        first = self._run(
            tmp_path, journal_dir=tmp_path / "journal", trace_dir=None
        )
        again = self._run(
            tmp_path, journal_dir=tmp_path / "journal", trace_dir=None, resume=True
        )
        assert again.sweep.resumed == len(grand_specs(2, TOOLS2, 2, False))
        assert [c.fingerprint for c in again.cells] == [
            c.fingerprint for c in first.cells
        ]
        assert not again.incomplete

    def test_needs_a_store_location(self):
        with pytest.raises(ValueError, match="trace"):
            run_grand_sweep(shards=2, configs=TOOLS2, suite_limit=1,
                            include_chaos=False)

    def test_chaos_cells_flagged(self, tmp_path):
        result = self._run(tmp_path, suite_limit=1, include_chaos=True,
                           configs=["drd"])
        kinds = {c.chaos for c in result.cells}
        assert kinds == {True, False}
        assert not result.incomplete

    def test_cells_table_renders_problems_first(self, tmp_path):
        result = self._run(tmp_path)
        result.cells.append(
            GrandCell(workload="zzz_broken", tool="drd", seed=1, error="boom")
        )
        table = grand_cells_table(result)
        lines = table.splitlines()
        assert "INCOMPLETE" in lines[3]
        assert "zzz_broken" in lines[3]
        limited = grand_cells_table(result, limit=1)
        assert "zzz_broken" in limited
        assert len(limited.splitlines()) == 4
