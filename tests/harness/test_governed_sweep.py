"""Resource-governed sweeps: budgets degrade structurally, never crash.

Covers the governance ladder end to end — wall-budget stop, over-RSS
preemption with a degraded (streaming) retry, second-preemption poison
quarantine — plus the disk side (LRU quota eviction, transient-I/O
retry, ENOSPC cache-off degradation) and the maintenance races (gc /
doctor / quarantine vs concurrent writers) that used to be crashes.

The RSS tests drive real forked workers over the ballast knob
(``REPRO_RSS_BALLAST_MB``), so memory pressure is deterministic: a
plain value inflates only non-degraded attempts (preempt → degraded
retry succeeds), the ``!`` form inflates degraded attempts too
(preempt → preempt → poison).
"""

import errno
import os
import pathlib

import pytest

from repro.harness.parallel import ResultCache, run_sweep, sweep_specs
from repro.harness.resources import (
    BALLAST_ENV,
    ResourceBudget,
    current_rss_bytes,
)
from repro.trace import TraceStore, record_trace

from tests.conftest import flag_handoff_program

WORKLOAD = "locks_mutex_counter_t4"
TOOL = "helgrind-lib-spin7"

#: governed sweeps need heartbeats (RSS samples) and an explicit
#: hung-after bound — replay/streaming workers never advance the step
#: counter, so default hung detection would misread startup time
GOV = dict(heartbeat_s=0.02, hung_after_s=10, timeout_s=120)


def _specs(n=1):
    return sweep_specs([WORKLOAD] * n, [TOOL], seeds=[1])


def _trace():
    return record_trace(flag_handoff_program(), seed=2)


class TestWallBudget:
    def test_exhausted_wall_budget_drains_structurally(self, tmp_path):
        result = run_sweep(
            _specs(3),
            workers=1,
            trace_dir=tmp_path,
            budget=ResourceBudget(wall_budget_s=0.0),
            **GOV,
        )
        assert [r.status for r in result.records] == ["wall-budget"] * 3
        assert not any(r.failed for r in result.records)
        assert result.summary().wall_budget_stopped == 3

    def test_generous_wall_budget_changes_nothing(self, tmp_path):
        result = run_sweep(
            _specs(1),
            workers=1,
            trace_dir=tmp_path,
            budget=ResourceBudget(wall_budget_s=3600.0),
            **GOV,
        )
        assert [r.status for r in result.records] == ["ok"]
        assert result.summary().wall_budget_stopped == 0


class TestRssPreemption:
    def test_over_budget_worker_degrades_and_matches_ungoverned(
        self, tmp_path, monkeypatch
    ):
        specs = _specs(1)
        baseline = run_sweep(specs, workers=0)
        monkeypatch.setenv(BALLAST_ENV, "120")
        cap = current_rss_bytes() + (60 << 20)
        governed = run_sweep(
            specs,
            workers=1,
            trace_dir=tmp_path,
            budget=ResourceBudget(max_rss_bytes=cap),
            **GOV,
        )
        rec = governed.records[0]
        assert rec.status == "ok"
        assert rec.degraded
        assert rec.oom_preempts == 1
        assert rec.peak_rss > cap
        assert not rec.failed
        summary = governed.summary()
        assert summary.oom_preempted == 1
        assert summary.degraded == 1
        # streaming degradation must be invisible in the verdict
        assert (
            governed.outcomes[0].report.fingerprint()
            == baseline.outcomes[0].report.fingerprint()
        )

    def test_unsalvageable_worker_is_poisoned_not_crashed(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(BALLAST_ENV, "120!")
        cap = current_rss_bytes() + (60 << 20)
        governed = run_sweep(
            _specs(1),
            workers=1,
            trace_dir=tmp_path,
            budget=ResourceBudget(max_rss_bytes=cap),
            **GOV,
        )
        rec = governed.records[0]
        assert rec.status == "poison"
        assert not rec.failed  # skipped, not failed
        assert rec.oom_preempts == 2
        assert "oom-preempted" in rec.error
        assert governed.summary().oom_preempted == 2

    def test_roomy_budget_never_preempts(self, tmp_path):
        governed = run_sweep(
            _specs(1),
            workers=1,
            trace_dir=tmp_path,
            budget=ResourceBudget(max_rss_bytes=current_rss_bytes() + (1 << 30)),
            **GOV,
        )
        rec = governed.records[0]
        assert rec.status == "ok"
        assert not rec.degraded
        assert rec.oom_preempts == 0
        assert rec.peak_rss > 0  # heartbeats sampled something real


class TestCacheQuota:
    def _fill(self, cache, n, size=1000):
        t = 1_000_000_000
        for i in range(n):
            cache.put(f"k{i}", "x" * size)
            os.utime(cache._path(f"k{i}"), (t + i, t + i))

    def test_lru_eviction_on_put(self, tmp_path):
        cache = ResultCache(tmp_path, quota_bytes=2500)
        self._fill(cache, 2)
        cache.put("k2", "x" * 1000)  # pushes past quota → evict oldest
        assert cache.get("k0") is None
        assert cache.get("k1") == "x" * 1000
        assert cache.get("k2") == "x" * 1000
        assert cache.evictions == 1

    def test_freshly_written_key_is_protected(self, tmp_path):
        # A quota smaller than one entry keeps the latest entry, never
        # evicting what the caller is about to read back.
        cache = ResultCache(tmp_path, quota_bytes=10)
        cache.put("only", "x" * 1000)
        assert cache.get("only") == "x" * 1000

    def test_sweep_budget_applies_quota_to_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.quota_bytes is None
        run_sweep(
            _specs(1),
            workers=0,
            cache=cache,
            budget=ResourceBudget(disk_quota_bytes=1 << 30),
        )
        assert cache.quota_bytes == 1 << 30


class TestTraceStoreQuota:
    def test_lru_eviction_on_put(self, tmp_path):
        trace = _trace()
        probe = TraceStore(tmp_path / "probe")
        probe.put("x", trace)
        entry_size = probe.total_bytes()
        store = TraceStore(tmp_path / "store", quota_bytes=int(entry_size * 2.5))
        t = 1_000_000_000
        for i in range(2):
            store.put(f"k{i}", trace)
            os.utime(store._path(f"k{i}"), (t + i, t + i))
        store.put("k2", trace)
        assert store.keys() == ["k1", "k2"]
        assert store.evictions == 1
        assert store.get("k1") is not None


class TestIoDegradation:
    def _enospc(self, *_a, **_k):
        raise OSError(errno.ENOSPC, "disk full")

    def test_transient_errors_retry_then_succeed(self, tmp_path):
        cache = ResultCache(tmp_path, io_backoff_s=0.0)
        orig = cache._atomic_write
        calls = []

        def flaky(tmp, path, data):
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EAGAIN, "try again")
            return orig(tmp, path, data)

        cache._atomic_write = flaky
        cache.put("k", "payload")
        assert len(calls) == 3
        assert not cache.disabled
        assert cache.get("k") == "payload"

    def test_enospc_frees_space_then_succeeds(self, tmp_path):
        cache = ResultCache(tmp_path, io_backoff_s=0.0)
        orig = cache._atomic_write
        calls = []

        def full_once(tmp, path, data):
            calls.append(1)
            if len(calls) == 1:
                raise OSError(errno.ENOSPC, "disk full")
            return orig(tmp, path, data)

        cache._atomic_write = full_once
        cache.put("k", "payload")
        assert not cache.disabled
        assert cache.get("k") == "payload"

    def test_persistent_enospc_turns_cache_off_with_note(self, tmp_path):
        cache = ResultCache(tmp_path, io_backoff_s=0.0)
        cache._atomic_write = self._enospc
        cache.put("k", "payload")  # must not raise
        assert cache.disabled
        assert any("cache-off" in n for n in cache.notes)
        assert cache.get("k") is None  # reads keep working (as misses)
        cache.put("k2", "payload")  # further puts are silent no-ops

    def test_persistent_enospc_turns_trace_store_off_with_note(self, tmp_path):
        store = TraceStore(tmp_path, io_backoff_s=0.0)
        store._atomic_write = self._enospc
        store.put("k", _trace())  # must not raise
        assert store.disabled
        assert any("store-off" in n for n in store.notes)
        store.put("k2", _trace())  # silent no-op

    def test_sweep_completes_and_surfaces_cache_off_note(self, tmp_path):
        cache = ResultCache(tmp_path, io_backoff_s=0.0)
        cache._atomic_write = self._enospc
        result = run_sweep(_specs(2), workers=0, cache=cache)
        assert not any(r.failed for r in result.records)
        assert [r.status for r in result.records] == ["ok", "ok"]
        assert any("cache-off" in n for n in result.notes)


class TestMaintenanceRaces:
    """gc / doctor / quarantine vs a concurrent writer or gc.

    Each test simulates losing the race deterministically: the file
    vanishes between the maintenance pass's directory listing and its
    per-entry syscall.  The pass must skip the entry — no exception,
    no phantom counts.
    """

    def test_doctor_tolerates_entries_vanishing_mid_scan(
        self, tmp_path, monkeypatch
    ):
        store = TraceStore(tmp_path)
        trace = _trace()
        store.put("gone", trace)
        store.put("stays", trace)
        victim = store._path("gone")
        orig = pathlib.Path.read_bytes

        def racy(self):
            if self.name == victim.name and self.exists():
                os.unlink(self)  # the concurrent gc wins the race
            return orig(self)

        monkeypatch.setattr(pathlib.Path, "read_bytes", racy)
        report = store.doctor()
        assert report.ok == 1
        assert report.scanned == 1  # the vanished entry is not "scanned"
        assert not report.quarantined

    def test_cache_doctor_tolerates_entries_vanishing_mid_scan(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        cache.put("gone", "a")
        cache.put("stays", "b")
        victim = cache._path("gone")
        orig = pathlib.Path.read_bytes

        def racy(self):
            if self.name == victim.name and self.exists():
                os.unlink(self)
            return orig(self)

        monkeypatch.setattr(pathlib.Path, "read_bytes", racy)
        report = cache.doctor()
        assert report.ok == 1
        assert report.scanned == 1
        assert not report.quarantined

    def test_gc_tolerates_concurrent_deletion(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        trace = _trace()
        store.put("doomed", trace)
        store.put("kept", trace)
        victim = store._path("doomed")
        orig = pathlib.Path.unlink

        def racy(self, missing_ok=False):
            if self.name == victim.name and self.exists():
                orig(self)  # the concurrent gc got there first
                raise FileNotFoundError(errno.ENOENT, "raced away", str(self))
            return orig(self, missing_ok=missing_ok)

        monkeypatch.setattr(pathlib.Path, "unlink", racy)
        stats = store.gc(keep=["kept"])
        # the raced-away entry is not *our* removal
        assert stats == {"removed": 0, "purged": 0, "kept": 1}
        assert store.keys() == ["kept"]

    def test_quarantine_tolerates_entry_vanishing(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        store.put("bad", _trace())
        path = store._path("bad")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # payload bit-flip: framing intact, checksum wrong
        path.write_bytes(bytes(blob))

        def raced(src, dst):
            raise FileNotFoundError(errno.ENOENT, "raced away", str(src))

        monkeypatch.setattr(os, "replace", raced)
        assert store.get("bad") is None  # structured miss, no crash
        assert store.quarantined == []  # nothing was actually quarantined
        assert store.misses == 1
