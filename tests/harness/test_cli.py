"""The repro-experiments command-line interface."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_t3_prints_characteristics(self, capsys):
        assert main(["t3"]) == 0
        out = capsys.readouterr().out
        assert "T3" in out
        assert "blackscholes" in out and "raytrace" in out
        assert "OpenMP" in out and "GLIB" in out

    def test_t2_prints_sensitivity(self, capsys):
        assert main(["t2"]) == 0
        out = capsys.readouterr().out
        assert "spin(3)" in out and "spin(8)" in out
        assert "False alarms" in out

    def test_t1_prints_suite_scores(self, capsys):
        assert main(["t1"]) == 0
        out = capsys.readouterr().out
        assert "Helgrind+ lib" in out and "DRD" in out
        assert "Correct" in out

    def test_k_flag_changes_tools(self, capsys):
        assert main(["--k", "3", "t1"]) == 0
        out = capsys.readouterr().out
        assert "spin(3)" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_t4_with_one_seed(self, capsys):
        assert main(["--seeds", "1", "t4"]) == 0
        out = capsys.readouterr().out
        assert "T4a" in out and "T4b" in out
        assert "freqmine" in out and "dedup" in out

    def test_f1_memory_figure(self, capsys):
        assert main(["--repeats", "1", "f1"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "mean memory overhead" in out

    def test_cases_inventory(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "120-case suite" in out
        assert "racy_counter_t2" in out
        assert "29 racy / 91 race-free" in out

    def test_chaos_suite_passes(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "Chaos suite" in out and "0 failing" in out
        assert "drop-flag-store" in out and "livelock" in out
        assert "Faults" in out  # run-log column

    def test_oracle_sweep(self, capsys):
        assert main(["--seeds", "2", "oracle"]) == 0
        out = capsys.readouterr().out
        assert "schedule-stable" in out
        assert "manifest" in out  # the plain races show up


class TestDurabilityCli:
    SWEEP = [
        "--limit", "1", "--seeds", "1", "--tools", "helgrind-lib", "sweep"
    ]

    def test_sweep_journal_then_resume(self, tmp_path, capsys):
        jdir = str(tmp_path / "journal")
        assert main([*self.SWEEP, "--journal-dir", jdir]) == 0
        capsys.readouterr()
        assert main([*self.SWEEP, "--journal-dir", jdir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 run(s) served from the checkpoint journal" in out

    def test_cache_doctor_quarantines_and_purges(self, tmp_path, capsys):
        cdir = str(tmp_path / "cache")
        assert main([*self.SWEEP, "--cache-dir", cdir]) == 0
        capsys.readouterr()
        # flip one payload bit so the checksum no longer matches
        (entry,) = (tmp_path / "cache").glob("*.pkl")
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF
        entry.write_bytes(bytes(blob))
        assert main(["--cache-dir", cdir, "cache", "doctor"]) == 0
        out = capsys.readouterr().out
        assert "1 newly quarantined" in out and "checksum-mismatch" in out
        assert main(["--cache-dir", cdir, "cache", "doctor", "--purge"]) == 0
        out = capsys.readouterr().out
        assert "1 purged" in out
        assert not list((tmp_path / "cache" / "corrupt").glob("*.pkl"))

    def test_cache_doctor_usage_errors(self, capsys):
        assert main(["cache", "doctor"]) == 2  # no --cache-dir
        assert main(["--cache-dir", "/tmp/x", "cache", "fsck"]) == 2
        err = capsys.readouterr().err
        assert "--cache-dir" in err and "unknown cache command" in err

    def test_triage_usage_errors(self, capsys):
        assert main(["triage"]) == 2
        assert main(["triage", "replay"]) == 2
        err = capsys.readouterr().err
        assert "usage" in err and "ARTIFACT" in err

    def test_triage_replay_reproduces_artifact(self, tmp_path, capsys):
        from repro.detectors import ToolConfig
        from repro.harness.chaos import chaos_spec
        from repro.harness.parallel import _failure_record
        from repro.harness.triage import capture_failure
        from repro.workloads import chaos_cases

        case = next(c for c in chaos_cases() if c.name == "drop-flag-store")
        spec = chaos_spec(case, ToolConfig.helgrind_lib_spin(7))
        record = _failure_record(spec, "livelock", 1, "")
        dest = capture_failure(spec, record, tmp_path, isolate=False)
        # exit 1 = the failure reproduced: the artifact is a live repro
        assert main(["triage", "replay", str(dest)]) == 1
        out = capsys.readouterr().out
        assert "failure REPRODUCED" in out
        assert main(["--shrunk", "triage", "replay", str(dest)]) == 1
        out = capsys.readouterr().out
        assert "shrunk repro" in out and "REPRODUCED" in out
