"""The repro-experiments command-line interface."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_t3_prints_characteristics(self, capsys):
        assert main(["t3"]) == 0
        out = capsys.readouterr().out
        assert "T3" in out
        assert "blackscholes" in out and "raytrace" in out
        assert "OpenMP" in out and "GLIB" in out

    def test_t2_prints_sensitivity(self, capsys):
        assert main(["t2"]) == 0
        out = capsys.readouterr().out
        assert "spin(3)" in out and "spin(8)" in out
        assert "False alarms" in out

    def test_t1_prints_suite_scores(self, capsys):
        assert main(["t1"]) == 0
        out = capsys.readouterr().out
        assert "Helgrind+ lib" in out and "DRD" in out
        assert "Correct" in out

    def test_k_flag_changes_tools(self, capsys):
        assert main(["--k", "3", "t1"]) == 0
        out = capsys.readouterr().out
        assert "spin(3)" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_t4_with_one_seed(self, capsys):
        assert main(["--seeds", "1", "t4"]) == 0
        out = capsys.readouterr().out
        assert "T4a" in out and "T4b" in out
        assert "freqmine" in out and "dedup" in out

    def test_f1_memory_figure(self, capsys):
        assert main(["--repeats", "1", "f1"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "mean memory overhead" in out

    def test_cases_inventory(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "120-case suite" in out
        assert "racy_counter_t2" in out
        assert "29 racy / 91 race-free" in out

    def test_chaos_suite_passes(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "Chaos suite" in out and "0 failing" in out
        assert "drop-flag-store" in out and "livelock" in out
        assert "Faults" in out  # run-log column

    def test_oracle_sweep(self, capsys):
        assert main(["--seeds", "2", "oracle"]) == 0
        out = capsys.readouterr().out
        assert "schedule-stable" in out
        assert "manifest" in out  # the plain races show up
