"""The chaos sweep: oracle pinning, determinism, cache keys, diagnostics."""

import pytest

from repro.detectors import ToolConfig
from repro.harness.chaos import (
    INFRA_FAILURES,
    ChaosReport,
    chaos_spec,
    chaos_table,
    run_chaos,
    verify_case,
)
from repro.harness.parallel import ResultCache, RunSpec, run_sweep
from repro.harness.registry import register_workload, unregister_workload
from repro.harness.runner import run_workload
from repro.harness.workload import Workload
from repro.isa import ProgramBuilder, instructions as ins
from repro.vm.faults import DropStore, FaultPlan
from repro.workloads import chaos_cases, chaos_workloads

CFG = ToolConfig.helgrind_lib_spin(7)


def _case(name):
    return next(c for c in chaos_cases() if c.name == name)


def _workload(name):
    return next(w for w in chaos_workloads() if w.name == name)


class TestOracle:
    def test_every_case_passes_serially(self):
        report = run_chaos(workers=0)
        assert report.ok, "\n".join(
            f"{v.case}: {v.detail}" for v in report.failed
        )
        assert len(report.verdicts) == len(chaos_cases())

    def test_no_run_is_failed_or_raises(self):
        report = run_chaos(workers=0)
        assert not any(r.failed for r in report.records)
        assert not any(r.status in INFRA_FAILURES for r in report.records)

    def test_abnormal_statuses_carry_diagnostics(self):
        report = run_chaos(workers=0)
        for rec in report.records:
            if rec.status in ("livelock", "fault"):
                assert rec.error, rec.workload
            if rec.status == "livelock":
                assert "stuck in marked loop" in rec.error
            assert rec.faults >= 1

    def test_table_renders(self):
        report = run_chaos(workers=0)
        table = chaos_table(report)
        assert "Chaos suite" in table and "PASS" in table


class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = run_chaos(workers=0)
        parallel = run_chaos(workers=2)
        assert [(v.case, v.status, v.passed) for v in serial.verdicts] == [
            (v.case, v.status, v.passed) for v in parallel.verdicts
        ]
        assert [(r.workload, r.status, r.faults) for r in serial.records] == [
            (r.workload, r.status, r.faults) for r in parallel.records
        ]

    def test_same_spec_reproduces_report_and_diagnosis(self):
        case = _case("drop-flag-store")
        outs = [
            run_workload(
                _workload(case.workload),
                CFG,
                seed=case.seed,
                fault_plan=case.plan,
                livelock_bound=case.livelock_bound,
            )
            for _ in range(2)
        ]
        a, b = outs
        assert a.result.status == b.result.status == "livelock"
        assert a.result.diagnose() == b.result.diagnose()
        assert sorted(map(str, a.report.warnings)) == sorted(
            map(str, b.report.warnings)
        )

    def test_cached_rerun_still_satisfies_the_oracle(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_chaos(workers=0, cache=cache)
        assert first.ok
        second = run_chaos(workers=0, cache=cache)
        assert second.ok
        assert all(r.status == "cached" for r in second.records)


class TestDurability:
    def test_infra_failures_cover_supervision_verdicts(self):
        # a hung worker is an infrastructure failure, not an oracle failure
        assert set(INFRA_FAILURES) == {"timeout", "crash", "error", "hung"}

    def test_resumed_chaos_matches_fresh_verdicts(self, tmp_path):
        # journal gives record durability; the cache supplies the detector
        # outcomes that note/livelock oracles inspect on resume
        cache = ResultCache(tmp_path / "cache")
        jdir = tmp_path / "journal"
        fresh = run_chaos(workers=0, cache=cache, journal_dir=jdir)
        resumed = run_chaos(
            workers=0, cache=cache, journal_dir=jdir, resume=True
        )
        assert fresh.ok and resumed.ok
        assert [(v.case, v.status, v.passed) for v in fresh.verdicts] == [
            (v.case, v.status, v.passed) for v in resumed.verdicts
        ]
        # every record came straight from the journals (one per fault class)
        assert len(resumed.records) == len(fresh.records)
        journaled = sum(
            len(f.read_text().splitlines()) - 1
            for f in jdir.glob("sweep-*.jsonl")
        )
        assert journaled == len(fresh.records)


class TestCacheKey:
    def test_key_varies_with_fault_plan_and_bound(self, tmp_path):
        cache = ResultCache(tmp_path)
        register_workload(_workload("chaos_flag_handoff"), replace=True)
        try:
            base = RunSpec("chaos_flag_handoff", CFG, 1)
            plan = FaultPlan(faults=(DropStore(symbol="FLAG"),))
            keys = {
                cache.key(base),
                cache.key(RunSpec("chaos_flag_handoff", CFG, 1, fault_plan=plan)),
                cache.key(
                    RunSpec(
                        "chaos_flag_handoff", CFG, 1, fault_plan=plan,
                        livelock_bound=500,
                    )
                ),
                cache.key(
                    RunSpec("chaos_flag_handoff", CFG, 1, livelock_bound=500)
                ),
            }
            assert len(keys) == 4
        finally:
            unregister_workload("chaos_flag_handoff")

    def test_chaos_spec_carries_the_case(self):
        case = _case("clamp-lock-pair")
        spec = chaos_spec(case, CFG)
        assert spec.workload == case.workload
        assert spec.fault_plan == case.plan
        assert spec.livelock_bound == case.livelock_bound


def _self_join_deadlock():
    """Main joins itself: every alive thread blocked -> VM deadlock."""
    pb = ProgramBuilder("chaos_self_join")
    mn = pb.function("main")
    self_tid = mn.const(0)
    mn.emit(ins.Join(self_tid))
    mn.halt()
    return pb.build()


class TestDeadlockDiagnostics:
    def test_record_carries_blocked_on_detail(self):
        wl = Workload(name="chaos_self_join", build=_self_join_deadlock, seed=1)
        result = run_sweep([RunSpec(wl, ToolConfig.helgrind_lib(), 1)], workers=0)
        (rec,) = result.records
        assert rec.status == "deadlock"
        assert not rec.failed
        # the failure log names who is blocked on whom
        assert "T0" in rec.error and "joining T0" in rec.error

    def test_deadlock_outcome_finalizes_partial(self):
        wl = Workload(name="chaos_self_join2", build=_self_join_deadlock, seed=1)
        out = run_workload(wl, ToolConfig.helgrind_lib())
        assert out.result.deadlocked
        assert out.report.partial
        diag = out.result.thread_diags[0]
        assert diag.status == "blocked_join" and diag.blocked_on_tid == 0


class TestVerifyCase:
    def test_oracle_mismatch_is_reported_not_raised(self):
        case = _case("drop-flag-store")
        spec = chaos_spec(case, CFG)
        result = run_sweep([spec], workers=0)
        (rec,), (out,) = result.records, result.outcomes
        good = verify_case(case, rec, out)
        assert good.passed
        import dataclasses

        wrong = dataclasses.replace(case, expect_statuses=("ok",))
        bad = verify_case(wrong, rec, out)
        assert not bad.passed and "not in expected" in bad.detail

    def test_report_failed_property(self):
        report = ChaosReport()
        assert report.ok and report.failed == []
