"""The parallel sweep engine: equivalence, cache, robustness, registry."""

import pickle

import pytest

from repro.detectors import ToolConfig
from repro.harness.parallel import (
    ResultCache,
    RunSpec,
    SweepError,
    run_sweep,
    sweep_specs,
    summarize_records,
)
from repro.harness.registry import (
    RegistryBuild,
    register_workload,
    resolve_workload,
    unregister_workload,
)
from repro.harness.runner import run_workload
from repro.harness.workload import Workload
from repro.isa import ProgramBuilder
from repro.runtime import build_library

from tests.conftest import flag_handoff_program


def _handoff(name="par_handoff", seed=1):
    return Workload(name=name, build=flag_handoff_program, seed=seed)


def _spin_forever_program():
    """A program that busy-waits on a flag nobody ever sets."""
    pb = ProgramBuilder("spin_forever")
    pb.global_("FLAG", 1)
    mn = pb.function("main")
    f = mn.addr("FLAG")
    mn.jmp("spin")
    mn.label("spin")
    v = mn.load(f)
    z = mn.eq(v, 0)
    mn.br(z, "spin2", "after")
    mn.label("spin2")
    mn.jmp("spin")
    mn.label("after")
    mn.halt()
    pb.link(build_library())
    return pb.build()


def _crashing_build():
    raise RuntimeError("boom: generator bug")


def _report_key(report):
    """Canonical report identity (set iteration order is not part of it)."""
    return (
        report.tool,
        sorted(map(str, report.warnings)),
        report.contexts,
        report.raw_count,
    )


class TestRegistry:
    def test_resolves_builtin_families(self):
        assert resolve_workload("vips").name == "vips"
        assert resolve_workload("fft").name == "fft"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_workload("no-such-workload")

    def test_register_and_shadow(self):
        wl = _handoff(name="registry_extra")
        register_workload(wl)
        try:
            assert resolve_workload("registry_extra") is wl
            with pytest.raises(ValueError):
                register_workload(wl)
        finally:
            unregister_workload("registry_extra")

    def test_registry_build_pickles(self):
        build = RegistryBuild("vips")
        clone = pickle.loads(pickle.dumps(build))
        assert clone.name == "vips"
        assert clone().fingerprint() == resolve_workload("vips").fresh_program().fingerprint()


class TestPicklableOutcome:
    def test_outcome_roundtrip_with_closure_build(self):
        out = run_workload(_handoff(), ToolConfig.helgrind_lib_spin(7))
        clone = pickle.loads(pickle.dumps(out))
        assert clone.workload.name == out.workload.name
        assert _report_key(clone.report) == _report_key(out.report)
        assert (clone.steps, clone.events, clone.seed) == (out.steps, out.events, out.seed)


class TestCacheKey:
    def test_key_is_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(workload="blackscholes", config=ToolConfig.helgrind_lib(), seed=1)
        assert cache.key(spec) == cache.key(spec)

    def test_key_varies_with_config_seed_and_program(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = RunSpec(workload="blackscholes", config=ToolConfig.helgrind_lib(), seed=1)
        keys = {
            cache.key(base),
            cache.key(RunSpec("blackscholes", ToolConfig.helgrind_lib_spin(7), 1)),
            cache.key(RunSpec("blackscholes", ToolConfig.helgrind_lib(), 2)),
            cache.key(RunSpec("swaptions", ToolConfig.helgrind_lib(), 1)),
        }
        assert len(keys) == 4

    def test_same_program_different_name_shares_key_material(self, tmp_path):
        # Content addressing: the key hashes the built program, so two
        # workload wrappers around the same generator agree.
        cache = ResultCache(tmp_path)
        a = RunSpec(_handoff(name="wrap_a"), ToolConfig.helgrind_lib(), 1)
        b = RunSpec(_handoff(name="wrap_b"), ToolConfig.helgrind_lib(), 1)
        assert cache.key(a) == cache.key(b)


class TestSweep:
    CONFIGS = (ToolConfig.helgrind_lib(), ToolConfig.helgrind_lib_spin(7))
    NAMES = ("blackscholes", "bodytrack", "par_eq_handoff")

    def _specs(self):
        register_workload(_handoff(name="par_eq_handoff"), replace=True)
        return sweep_specs(self.NAMES, self.CONFIGS, [1, 2])

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = self._specs()
        assert len(specs) >= 8
        serial = run_sweep(specs, workers=0)
        parallel = run_sweep(specs, workers=2)
        assert all(o is not None for o in parallel.outcomes)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert _report_key(a.report) == _report_key(b.report)
            assert (a.steps, a.events, a.detector_words, a.seed) == (
                b.steps,
                b.events,
                b.detector_words,
                b.seed,
            )
            assert a.result.final_memory == b.result.final_memory

    def test_second_cached_invocation_executes_zero_runs(self, tmp_path):
        specs = self._specs()
        cache = ResultCache(tmp_path)
        first = run_sweep(specs, workers=2, cache=cache).summary()
        assert first.executed == len(specs) and first.cached == 0
        second = run_sweep(specs, workers=2, cache=cache).summary()
        assert second.executed == 0 and second.cached == len(specs)
        # ... and cached outcomes still score identically
        uncached = run_sweep(specs, workers=0)
        cached = run_sweep(specs, workers=0, cache=cache)
        for a, b in zip(uncached.outcomes, cached.outcomes):
            assert _report_key(a.report) == _report_key(b.report)

    def test_serial_path_also_writes_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1)]
        run_sweep(specs, workers=0, cache=cache)
        assert len(cache) == 1
        summary = run_sweep(specs, workers=0, cache=cache).summary()
        assert summary.cached == 1 and summary.executed == 0

    def test_records_carry_observability(self):
        specs = [RunSpec(_handoff(), ToolConfig.helgrind_lib_spin(7), 1)]
        result = run_sweep(specs, workers=0)
        (rec,) = result.records
        assert rec.status == "ok"
        assert rec.steps > 0 and rec.events > 0
        assert rec.steps_per_s > 0 and rec.events_per_s > 0
        assert rec.spin_loops >= 1 and rec.adhoc_edges >= 1
        summary = result.summary()
        assert summary.executed == 1 and summary.steps == rec.steps
        assert summary.steps_per_s > 0


class TestRobustness:
    def test_timeout_kills_and_records_failure(self):
        hang = Workload(
            name="par_hang",
            build=_spin_forever_program,
            seed=1,
            max_steps=500_000_000,
        )
        specs = [
            RunSpec(hang, ToolConfig.helgrind_lib(), 1),
            RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1),
        ]
        result = run_sweep(specs, workers=2, timeout_s=0.3, retries=0)
        hang_rec = next(r for r in result.records if r.workload == "par_hang")
        ok_rec = next(r for r in result.records if r.workload != "par_hang")
        assert hang_rec.status == "timeout"
        assert result.outcomes[0] is None
        # one diverging workload must not take the sweep down
        assert ok_rec.status == "ok" and result.outcomes[1] is not None

    def test_timeout_retries_are_bounded(self):
        hang = Workload(
            name="par_hang2",
            build=_spin_forever_program,
            seed=1,
            max_steps=500_000_000,
        )
        result = run_sweep(
            [RunSpec(hang, ToolConfig.helgrind_lib(), 1)],
            workers=1,
            timeout_s=0.2,
            retries=2,
        )
        (rec,) = result.records
        assert rec.status == "timeout" and rec.attempts == 3

    def test_worker_error_is_isolated(self):
        bad = Workload(name="par_crash", build=_crashing_build, seed=1)
        specs = [
            RunSpec(bad, ToolConfig.helgrind_lib(), 1),
            RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1),
        ]
        result = run_sweep(specs, workers=2, retries=0)
        bad_rec = next(r for r in result.records if r.workload == "par_crash")
        assert bad_rec.status == "error"
        assert "boom" in bad_rec.error
        assert result.outcomes[1] is not None

    def test_strict_sweep_raises(self):
        bad = Workload(name="par_crash2", build=_crashing_build, seed=1)
        with pytest.raises(SweepError):
            run_sweep(
                [RunSpec(bad, ToolConfig.helgrind_lib(), 1)],
                workers=1,
                retries=0,
                strict=True,
            )


class TestMetricsIntegration:
    def test_score_suite_parallel_equals_serial(self):
        from repro.harness.metrics import score_suite
        from repro.workloads import build_suite

        cases = build_suite()[:6]
        cfg = ToolConfig.helgrind_lib_spin(7)
        serial, _ = score_suite(cases, cfg)
        parallel, _ = score_suite(cases, cfg, workers=2)
        assert serial.row() == parallel.row()
        assert [c.true_symbols for c in serial.cases] == [
            c.true_symbols for c in parallel.cases
        ]

    def test_racy_contexts_table_parallel_equals_serial(self):
        from repro.harness.metrics import racy_contexts_table
        from repro.workloads.parsec.registry import parsec_workload

        wls = [parsec_workload("blackscholes"), parsec_workload("bodytrack")]
        cfgs = [ToolConfig.helgrind_lib(), ToolConfig.helgrind_lib_spin(7)]
        serial = racy_contexts_table(wls, cfgs, [1, 2])
        parallel = racy_contexts_table(wls, cfgs, [1, 2], workers=2)
        assert serial == parallel


class TestSummary:
    def test_summarize_empty(self):
        s = summarize_records([], wall_s=0.0)
        assert s.runs == 0 and s.steps_per_s == 0.0 and s.speedup == 0.0
