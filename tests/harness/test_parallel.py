"""The parallel sweep engine: equivalence, cache, robustness, registry."""

import json
import os
import pickle
import signal
import threading
import time

import pytest

from repro.detectors import ToolConfig
from repro.harness.parallel import (
    ResultCache,
    RunSpec,
    SweepError,
    _sigterm_as_interrupt,
    run_sweep,
    sweep_specs,
    summarize_records,
)
from repro.harness.registry import (
    RegistryBuild,
    register_workload,
    resolve_workload,
    unregister_workload,
)
from repro.harness.runner import run_workload
from repro.harness.workload import Workload
from repro.isa import ProgramBuilder
from repro.runtime import build_library

from tests.conftest import flag_handoff_program


def _handoff(name="par_handoff", seed=1):
    return Workload(name=name, build=flag_handoff_program, seed=seed)


def _spin_forever_program():
    """A program that busy-waits on a flag nobody ever sets."""
    pb = ProgramBuilder("spin_forever")
    pb.global_("FLAG", 1)
    mn = pb.function("main")
    f = mn.addr("FLAG")
    mn.jmp("spin")
    mn.label("spin")
    v = mn.load(f)
    z = mn.eq(v, 0)
    mn.br(z, "spin2", "after")
    mn.label("spin2")
    mn.jmp("spin")
    mn.label("after")
    mn.halt()
    pb.link(build_library())
    return pb.build()


def _crashing_build():
    raise RuntimeError("boom: generator bug")


def _report_key(report):
    """Canonical report identity (set iteration order is not part of it)."""
    return (
        report.tool,
        sorted(map(str, report.warnings)),
        report.contexts,
        report.raw_count,
    )


class TestRegistry:
    def test_resolves_builtin_families(self):
        assert resolve_workload("vips").name == "vips"
        assert resolve_workload("fft").name == "fft"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_workload("no-such-workload")

    def test_register_and_shadow(self):
        wl = _handoff(name="registry_extra")
        register_workload(wl)
        try:
            assert resolve_workload("registry_extra") is wl
            with pytest.raises(ValueError):
                register_workload(wl)
        finally:
            unregister_workload("registry_extra")

    def test_registry_build_pickles(self):
        build = RegistryBuild("vips")
        clone = pickle.loads(pickle.dumps(build))
        assert clone.name == "vips"
        assert clone().fingerprint() == resolve_workload("vips").fresh_program().fingerprint()


class TestPicklableOutcome:
    def test_outcome_roundtrip_with_closure_build(self):
        out = run_workload(_handoff(), ToolConfig.helgrind_lib_spin(7))
        clone = pickle.loads(pickle.dumps(out))
        assert clone.workload.name == out.workload.name
        assert _report_key(clone.report) == _report_key(out.report)
        assert (clone.steps, clone.events, clone.seed) == (out.steps, out.events, out.seed)


class TestCacheKey:
    def test_key_is_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(workload="blackscholes", config=ToolConfig.helgrind_lib(), seed=1)
        assert cache.key(spec) == cache.key(spec)

    def test_key_varies_with_config_seed_and_program(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = RunSpec(workload="blackscholes", config=ToolConfig.helgrind_lib(), seed=1)
        keys = {
            cache.key(base),
            cache.key(RunSpec("blackscholes", ToolConfig.helgrind_lib_spin(7), 1)),
            cache.key(RunSpec("blackscholes", ToolConfig.helgrind_lib(), 2)),
            cache.key(RunSpec("swaptions", ToolConfig.helgrind_lib(), 1)),
        }
        assert len(keys) == 4

    def test_same_program_different_name_shares_key_material(self, tmp_path):
        # Content addressing: the key hashes the built program, so two
        # workload wrappers around the same generator agree.
        cache = ResultCache(tmp_path)
        a = RunSpec(_handoff(name="wrap_a"), ToolConfig.helgrind_lib(), 1)
        b = RunSpec(_handoff(name="wrap_b"), ToolConfig.helgrind_lib(), 1)
        assert cache.key(a) == cache.key(b)


class TestSweep:
    CONFIGS = (ToolConfig.helgrind_lib(), ToolConfig.helgrind_lib_spin(7))
    NAMES = ("blackscholes", "bodytrack", "par_eq_handoff")

    def _specs(self):
        register_workload(_handoff(name="par_eq_handoff"), replace=True)
        return sweep_specs(self.NAMES, self.CONFIGS, [1, 2])

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = self._specs()
        assert len(specs) >= 8
        serial = run_sweep(specs, workers=0)
        parallel = run_sweep(specs, workers=2)
        assert all(o is not None for o in parallel.outcomes)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert _report_key(a.report) == _report_key(b.report)
            assert (a.steps, a.events, a.detector_words, a.seed) == (
                b.steps,
                b.events,
                b.detector_words,
                b.seed,
            )
            assert a.result.final_memory == b.result.final_memory

    def test_second_cached_invocation_executes_zero_runs(self, tmp_path):
        specs = self._specs()
        cache = ResultCache(tmp_path)
        first = run_sweep(specs, workers=2, cache=cache).summary()
        assert first.executed == len(specs) and first.cached == 0
        second = run_sweep(specs, workers=2, cache=cache).summary()
        assert second.executed == 0 and second.cached == len(specs)
        # ... and cached outcomes still score identically
        uncached = run_sweep(specs, workers=0)
        cached = run_sweep(specs, workers=0, cache=cache)
        for a, b in zip(uncached.outcomes, cached.outcomes):
            assert _report_key(a.report) == _report_key(b.report)

    def test_serial_path_also_writes_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1)]
        run_sweep(specs, workers=0, cache=cache)
        assert len(cache) == 1
        summary = run_sweep(specs, workers=0, cache=cache).summary()
        assert summary.cached == 1 and summary.executed == 0

    def test_records_carry_observability(self):
        specs = [RunSpec(_handoff(), ToolConfig.helgrind_lib_spin(7), 1)]
        result = run_sweep(specs, workers=0)
        (rec,) = result.records
        assert rec.status == "ok"
        assert rec.steps > 0 and rec.events > 0
        assert rec.steps_per_s > 0 and rec.events_per_s > 0
        assert rec.spin_loops >= 1 and rec.adhoc_edges >= 1
        summary = result.summary()
        assert summary.executed == 1 and summary.steps == rec.steps
        assert summary.steps_per_s > 0


class TestRobustness:
    def test_timeout_kills_and_records_failure(self):
        hang = Workload(
            name="par_hang",
            build=_spin_forever_program,
            seed=1,
            max_steps=500_000_000,
        )
        specs = [
            RunSpec(hang, ToolConfig.helgrind_lib(), 1),
            RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1),
        ]
        result = run_sweep(specs, workers=2, timeout_s=0.3, retries=0)
        hang_rec = next(r for r in result.records if r.workload == "par_hang")
        ok_rec = next(r for r in result.records if r.workload != "par_hang")
        assert hang_rec.status == "timeout"
        assert result.outcomes[0] is None
        # one diverging workload must not take the sweep down
        assert ok_rec.status == "ok" and result.outcomes[1] is not None

    def test_timeout_retries_are_bounded(self):
        hang = Workload(
            name="par_hang2",
            build=_spin_forever_program,
            seed=1,
            max_steps=500_000_000,
        )
        result = run_sweep(
            [RunSpec(hang, ToolConfig.helgrind_lib(), 1)],
            workers=1,
            timeout_s=0.2,
            retries=2,
        )
        (rec,) = result.records
        assert rec.status == "timeout" and rec.attempts == 3

    def test_worker_error_is_isolated(self):
        bad = Workload(name="par_crash", build=_crashing_build, seed=1)
        specs = [
            RunSpec(bad, ToolConfig.helgrind_lib(), 1),
            RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1),
        ]
        result = run_sweep(specs, workers=2, retries=0)
        bad_rec = next(r for r in result.records if r.workload == "par_crash")
        assert bad_rec.status == "error"
        assert "boom" in bad_rec.error
        assert result.outcomes[1] is not None

    def test_strict_sweep_raises(self):
        bad = Workload(name="par_crash2", build=_crashing_build, seed=1)
        with pytest.raises(SweepError):
            run_sweep(
                [RunSpec(bad, ToolConfig.helgrind_lib(), 1)],
                workers=1,
                retries=0,
                strict=True,
            )


class TestSigtermHandling:
    """A supervisor's SIGTERM gets the same graceful teardown as Ctrl-C."""

    def test_sigterm_raises_keyboard_interrupt_and_restores_handler(self):
        prev = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt, match="SIGTERM"):
            with _sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5.0)  # the pending signal interrupts the sleep
        assert signal.getsignal(signal.SIGTERM) is prev

    def test_noop_off_the_main_thread(self):
        # Signal handlers can only be installed from the main thread;
        # elsewhere the context must be inert, not crash.
        prev = signal.getsignal(signal.SIGTERM)
        seen = {}

        def body():
            with _sigterm_as_interrupt():
                seen["handler"] = signal.getsignal(signal.SIGTERM)

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert seen["handler"] is prev

    def test_sigterm_mid_sweep_returns_journaled_partial_result(self, tmp_path):
        # A stray late SIGTERM (sweep somehow done first) must not kill
        # pytest with the default action.
        outer = signal.signal(signal.SIGTERM, lambda *_a: None)
        hang = Workload(
            name="par_term_hang",
            build=_spin_forever_program,
            seed=1,
            max_steps=500_000_000,
        )
        specs = [
            RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1),
            RunSpec(hang, ToolConfig.helgrind_lib(), 1),
        ]
        timer = threading.Timer(2.0, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            result = run_sweep(
                specs, workers=2, journal_dir=tmp_path, timeout_s=120.0
            )
        finally:
            timer.cancel()
            signal.signal(signal.SIGTERM, outer)
        assert result.interrupted is True
        done = [r for r in result.records if r.workload != "par_term_hang"]
        assert [r.status for r in done] == ["ok"]
        # The finished record reached the fsynced journal before return.
        entries = []
        for path in tmp_path.glob("sweep-*.jsonl"):
            entries += path.read_text().splitlines()[1:]
        assert len(entries) == len(done)


class TestCacheIntegrity:
    def _prime(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1)
        run_sweep([spec], workers=0, cache=cache)
        key = cache.key(spec)
        assert cache.get(key) is not None
        return cache, key

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache, key = self._prime(tmp_path)
        assert not list(tmp_path.glob("*.tmp*"))
        assert cache._path(key).exists()

    def test_truncated_entry_quarantined_not_crash(self, tmp_path):
        cache, key = self._prime(tmp_path)
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get(key) is None  # a miss, never a raise
        assert not path.exists()
        (q,) = [e for e in cache.quarantined if e.key == key]
        assert q.reason in ("truncated", "checksum-mismatch")
        note = json.loads(
            (cache.corrupt_dir / f"{key}.note.json").read_text()
        )
        assert note["key"] == key and note["reason"] == q.reason

    def test_bitflip_fails_checksum(self, tmp_path):
        cache, key = self._prime(tmp_path)
        path = cache._path(key)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.get(key) is None
        assert cache.quarantined[-1].reason == "checksum-mismatch"

    def test_foreign_blob_is_bad_magic(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache._path("f" * 64).write_bytes(b"not a cache entry at all" * 4)
        assert cache.get("f" * 64) is None
        assert cache.quarantined[-1].reason == "bad-magic"

    def test_legacy_unframed_pickle_is_quarantined(self, tmp_path):
        # an entry written by the pre-framing layout must not deserialize
        cache = ResultCache(tmp_path)
        cache._path("e" * 64).write_bytes(pickle.dumps({"old": "layout"}))
        assert cache.get("e" * 64) is None
        assert cache.quarantined

    def test_corrupted_sweep_reexecutes_and_heals(self, tmp_path):
        cache, key = self._prime(tmp_path)
        path = cache._path(key)
        path.write_bytes(b"RPRC garbage")
        spec = RunSpec(_handoff(), ToolConfig.helgrind_lib(), 1)
        summary = run_sweep([spec], workers=0, cache=cache).summary()
        assert summary.executed == 1 and summary.cached == 0
        assert cache.get(key) is not None  # rewritten cleanly

    def test_doctor_scans_and_purges(self, tmp_path):
        cache, key = self._prime(tmp_path)
        spec2 = RunSpec(_handoff(), ToolConfig.helgrind_lib(), 2)
        run_sweep([spec2], workers=0, cache=cache)
        bad = cache._path(key)
        bad.write_bytes(bad.read_bytes()[:30])
        report = cache.doctor()
        assert report.scanned == 2 and report.ok == 1
        assert len(report.quarantined) == 1 and report.corrupt_entries == 1
        report2 = cache.doctor(purge=True)
        assert report2.purged == 1
        assert not list(cache.corrupt_dir.glob("*"))


def _child_only_hang_workload(name):
    """A workload whose build hangs in worker children but not the parent
    (prewarm_static runs builds in the parent before forking)."""
    parent = os.getpid()

    def build():
        if os.getpid() != parent:
            while True:
                time.sleep(0.02)
        return flag_handoff_program()

    return Workload(name=name, build=build, seed=1)


class TestSupervision:
    CFG = ToolConfig.helgrind_lib()

    def test_hung_worker_detected_before_flat_timeout(self):
        hang = _child_only_hang_workload("sup_hang")
        start = time.monotonic()
        result = run_sweep(
            [RunSpec(hang, self.CFG, 1)],
            workers=1,
            timeout_s=60,
            retries=0,
            heartbeat_s=0.05,
            hung_after_s=0.5,
        )
        (rec,) = result.records
        assert rec.status == "hung"
        assert "no VM progress" in rec.error
        assert time.monotonic() - start < 30  # far under the flat timeout

    def test_progressing_run_with_heartbeats_completes(self):
        result = run_sweep(
            [RunSpec(_handoff(), self.CFG, 1)],
            workers=1,
            timeout_s=30,
            heartbeat_s=0.02,
        )
        (rec,) = result.records
        assert rec.status == "ok"

    def test_hung_counts_as_failed_in_summary(self):
        hang = _child_only_hang_workload("sup_hang2")
        result = run_sweep(
            [RunSpec(hang, self.CFG, 1)],
            workers=1,
            retries=0,
            heartbeat_s=0.05,
            hung_after_s=0.4,
        )
        assert result.summary().failed == 1

    def test_poison_spec_quarantined_not_failed(self):
        hang = _child_only_hang_workload("sup_poison")
        specs = [
            RunSpec(hang, self.CFG, 1),
            RunSpec(_handoff(), self.CFG, 1),
        ]
        result = run_sweep(
            specs,
            workers=2,
            retries=5,
            heartbeat_s=0.05,
            hung_after_s=0.3,
            poison_threshold=2,
        )
        poison = next(r for r in result.records if r.workload == "sup_poison")
        ok = next(r for r in result.records if r.workload != "sup_poison")
        assert poison.status == "poison" and "quarantined" in poison.error
        assert ok.status == "ok"
        summary = result.summary()
        assert summary.poisoned == 1 and summary.failed == 0
        assert result.poisoned == [poison]
        # poison is not a sweep failure: strict sweeps don't raise on it
        assert not result.failed

    def test_poison_threshold_bounds_worker_kills(self):
        parent = os.getpid()

        def exit_build():
            if os.getpid() != parent:  # spare the parent's prewarm pass
                os._exit(23)
            return flag_handoff_program()

        # crash-class failures also count toward poisoning
        crash = Workload(name="sup_exit", build=exit_build, seed=1)
        result = run_sweep(
            [RunSpec(crash, self.CFG, 1)],
            workers=1,
            retries=10,
            poison_threshold=3,
        )
        (rec,) = result.records
        assert rec.status == "poison"
        assert rec.attempts == 3


class TestMetricsIntegration:
    def test_score_suite_parallel_equals_serial(self):
        from repro.harness.metrics import score_suite
        from repro.workloads import build_suite

        cases = build_suite()[:6]
        cfg = ToolConfig.helgrind_lib_spin(7)
        serial, _ = score_suite(cases, cfg)
        parallel, _ = score_suite(cases, cfg, workers=2)
        assert serial.row() == parallel.row()
        assert [c.true_symbols for c in serial.cases] == [
            c.true_symbols for c in parallel.cases
        ]

    def test_racy_contexts_table_parallel_equals_serial(self):
        from repro.harness.metrics import racy_contexts_table
        from repro.workloads.parsec.registry import parsec_workload

        wls = [parsec_workload("blackscholes"), parsec_workload("bodytrack")]
        cfgs = [ToolConfig.helgrind_lib(), ToolConfig.helgrind_lib_spin(7)]
        serial = racy_contexts_table(wls, cfgs, [1, 2])
        parallel = racy_contexts_table(wls, cfgs, [1, 2], workers=2)
        assert serial == parallel


class TestSummary:
    def test_summarize_empty(self):
        s = summarize_records([], wall_s=0.0)
        assert s.runs == 0 and s.steps_per_s == 0.0 and s.speedup == 0.0
