"""TraceStore: content-addressed persistence of recorded executions.

The store follows the result cache's integrity discipline — framed
checksummed entries, atomic writes, corruption quarantined (never
raised) — and its key covers exactly what shapes the event stream:
program, scheduler, seed, instrumentation parameters, fault plan.  The
tool configuration is deliberately *excluded* so one recording serves
every preset of a sweep cell.
"""

import json

import pytest

from repro.detectors import ToolConfig
from repro.harness.parallel import RunSpec
from repro.trace import Trace, TraceStore, key_for_spec, record_trace, trace_key
from repro.trace.store import TRACE_SCHEMA, _TRACE_HEADER

from tests.conftest import flag_handoff_program


@pytest.fixture
def trace():
    return record_trace(flag_handoff_program(), seed=3)


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "traces")


KEY = "k" * 64


class TestRoundTrip:
    def test_put_get(self, store, trace):
        store.put(KEY, trace)
        loaded = store.get(KEY)
        assert loaded == trace
        assert loaded.scheduler == trace.scheduler
        assert loaded.status == trace.status
        assert store.hits == 1 and store.writes == 1

    def test_round_tripped_trace_analyzes_identically(self, store, trace):
        from repro.trace import analyze_trace

        store.put(KEY, trace)
        cfg = ToolConfig.helgrind_lib_spin(7)
        assert (
            analyze_trace(store.get(KEY), cfg).report.fingerprint()
            == analyze_trace(trace, cfg).report.fingerprint()
        )

    def test_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.misses == 1

    def test_has_keys_len_clear(self, store, trace):
        assert not store.has(KEY)
        store.put(KEY, trace)
        assert store.has(KEY)
        assert store.keys() == [KEY]
        assert len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_entries_reads_meta_only(self, store, trace):
        store.put(KEY, trace)
        [(key, meta, size)] = list(store.entries())
        assert key == KEY
        assert meta["program"] == trace.program_name
        assert meta["seed"] == trace.seed
        assert meta["scheduler"] == trace.scheduler
        assert meta["events"] == len(trace.events)
        assert size > 0


class TestCorruption:
    def test_flipped_byte_quarantines(self, store, trace):
        store.put(KEY, trace)
        path = store._path(KEY)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(KEY) is None
        assert not path.exists()  # moved aside, not left in place
        assert store.quarantined[0].key == KEY
        note = json.loads(
            (store.corrupt_dir / f"{KEY}.note.json").read_text()
        )
        assert note["reason"] == "checksum-mismatch"

    def test_truncated_entry_quarantines(self, store, trace):
        store.put(KEY, trace)
        path = store._path(KEY)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get(KEY) is None
        assert store.quarantined[0].reason == "truncated"

    def test_schema_mismatch_quarantines(self, store, trace):
        store.put(KEY, trace)
        path = store._path(KEY)
        data = bytearray(path.read_bytes())
        # rewrite the header with a future schema number
        data[: _TRACE_HEADER.size] = _TRACE_HEADER.pack(
            b"RPRT", 1, TRACE_SCHEMA + 1
        )
        path.write_bytes(bytes(data))
        assert store.get(KEY) is None
        assert store.quarantined[0].reason == f"schema-{TRACE_SCHEMA + 1}"

    def test_doctor_scans_and_purges(self, store, trace):
        store.put(KEY, trace)
        bad = "b" * 64
        store.put(bad, trace)
        path = store._path(bad)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        report = store.doctor()
        assert report.scanned == 2 and report.ok == 1
        assert [q.key for q in report.quarantined] == [bad]
        assert report.corrupt_entries == 1
        report2 = store.doctor(purge=True)
        assert report2.purged == 1
        assert not list(store.corrupt_dir.glob("*.trc"))


class TestGc:
    def test_keep_none_keeps_valid_purges_corrupt(self, store, trace):
        store.put(KEY, trace)
        store.corrupt_dir.mkdir(parents=True)
        (store.corrupt_dir / "x.trc").write_bytes(b"junk")
        stats = store.gc()
        assert stats == {"removed": 0, "purged": 1, "kept": 1}
        assert store.has(KEY)

    def test_keep_set_drops_the_rest(self, store, trace):
        store.put(KEY, trace)
        store.put("a" * 64, trace)
        stats = store.gc(keep=[KEY])
        assert stats["removed"] == 1 and stats["kept"] == 1
        assert store.keys() == [KEY]


class TestKeying:
    FP = "f" * 64

    def _key(self, **kw):
        args = dict(seed=1, max_steps=1000)
        args.update(kw)
        return trace_key(self.FP, **args)

    def test_stream_shaping_inputs_change_the_key(self):
        base = self._key()
        assert self._key(seed=2) != base
        assert self._key(scheduler="round-robin") != base
        assert self._key(max_steps=2000) != base
        assert self._key(max_blocks=16) != base
        assert self._key(inline_depth=0) != base
        assert self._key(livelock_bound=100) != base
        assert trace_key("e" * 64, seed=1, max_steps=1000) != base

    def test_scheduler_spec_is_canonicalized(self):
        assert self._key(scheduler="random") == self._key(scheduler=None)
        with pytest.raises(ValueError):
            self._key(scheduler="no-such-policy")

    def test_fault_plan_changes_the_key(self):
        from repro.vm.faults import FaultPlan, KillThread

        plan = FaultPlan(faults=(KillThread(at_step=10, tid=1),))
        assert self._key(fault_plan=plan) != self._key()

    def test_tool_config_is_excluded(self):
        """Every paper preset of a cell maps to one recording."""
        specs = [
            RunSpec(workload="streamcluster", config=name, seed=1)
            for name in ("helgrind-lib", "helgrind-lib-spin7", "drd", "eraser")
        ]
        keys = {key_for_spec(s) for s in specs}
        assert len(keys) == 1

    def test_scheduler_spec_enters_spec_key(self):
        live = RunSpec(workload="streamcluster", config="drd", seed=1)
        rr = RunSpec(
            workload="streamcluster", config="drd", seed=1, scheduler="round-robin"
        )
        assert key_for_spec(live) != key_for_spec(rr)


class TestConcurrentQuotaEviction:
    """Writers racing the collector under an eviction-forcing quota.

    Eviction unlinks files out from under concurrent ``gc``/``get``
    calls (and vice versa); the store's contract is that a vanished or
    half-visible entry is a miss, never an exception — mirroring the
    result cache's "corruption quarantined, races tolerated" posture.
    """

    def test_writers_race_gc_without_exceptions(self, tmp_path, trace):
        import threading

        root = tmp_path / "traces"
        # Size one entry, then pick a quota that holds ~3 of them so
        # every writer round forces LRU eviction of someone's entry.
        probe = TraceStore(root)
        probe.put(KEY, trace)
        entry_bytes = (root / f"{KEY}.trc").stat().st_size
        quota = 3 * entry_bytes + entry_bytes // 2

        errors = []
        stop = threading.Event()

        def writer(worker):
            store = TraceStore(root, quota_bytes=quota)
            try:
                for i in range(10):
                    key = f"{worker:02d}{i:02d}" + "e" * 60
                    store.put(key, trace)
                    got = store.get(key)
                    # Evicted-by-a-peer reads back as a miss, nothing else.
                    assert got is None or got == trace
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def collector():
            store = TraceStore(root, quota_bytes=quota)
            try:
                while not stop.is_set():
                    stats = store.gc()
                    assert set(stats) == {"removed", "purged", "kept"}
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
        threads.append(threading.Thread(target=collector))
        for t in threads:
            t.start()
        for t in threads[:-1]:
            t.join()
        stop.set()
        threads[-1].join()

        assert errors == []
        # The survivors are intact and the store still honors its quota
        # once a final enforcement pass runs.
        survivor = TraceStore(root, quota_bytes=quota)
        for key in survivor.keys():
            got = survivor.get(key)
            assert got is None or got == trace
        survivor._enforce_quota()
        total = sum(p.stat().st_size for p in root.glob("*.trc"))
        assert total <= quota
