"""Failure forensics: artifact capture, ddmin shrinking, replay."""

import dataclasses
import json

import pytest

from repro.detectors import ToolConfig
from repro.harness.chaos import chaos_spec, run_chaos
from repro.harness.parallel import RunSpec, _failure_record, run_sweep
from repro.harness.triage import (
    ARTIFACT_KIND,
    capture_failure,
    chaos_oracle_predicate,
    failure_predicate,
    load_artifact,
    replay_artifact,
    shrink_candidates,
    shrink_failure,
)
from repro.harness.workload import Workload
from repro.isa import instructions as ins
from repro.trace import replay_trace
from repro.workloads.dr_test.faults import chaos_cases

from tests.conftest import flag_handoff_program


def _case(name):
    return {c.name: c for c in chaos_cases()}[name]


CONFIG = ToolConfig.helgrind_lib_spin(7)


class TestPredicates:
    def test_wallclock_statuses_accept_any_abnormal_ending(self):
        for status in ("timeout", "hung", "crash", "error", "poison"):
            pred = failure_predicate(status)
            assert pred(_FakeTrace("livelock")) and pred(_FakeTrace("step-limit"))
            assert not pred(_FakeTrace("ok"))

    def test_exact_statuses_must_match(self):
        pred = failure_predicate("livelock")
        assert pred(_FakeTrace("livelock"))
        assert not pred(_FakeTrace("deadlock"))

    def test_fault_accepts_both_abnormal_shapes(self):
        pred = failure_predicate("fault")
        assert pred(_FakeTrace("deadlock")) and pred(_FakeTrace("step-limit"))
        assert not pred(_FakeTrace("ok"))


class _FakeTrace:
    def __init__(self, status):
        self.status = status


class TestShrinkCandidates:
    def test_excludes_library_terminators_and_nops(self):
        program = flag_handoff_program()
        locs = shrink_candidates(program)
        assert locs, "a real program offers candidates"
        for loc in locs:
            func = program.functions[loc.function]
            assert not func.is_library
            instr = program.instruction_at(loc)
            assert not ins.is_terminator(instr)
            assert not isinstance(instr, ins.Nop)


class TestShrinker:
    def test_shrinks_chaos_livelock_to_smaller_still_failing_repro(self):
        case = _case("drop-flag-store")
        spec = chaos_spec(case, CONFIG)
        workload = spec.resolve()
        trace, stats = shrink_failure(
            workload.fresh_program,
            failure_predicate("livelock"),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        assert trace is not None and trace.status == "livelock"
        assert stats.nopped > 0, "ddmin must remove something"
        assert stats.retained < stats.candidates
        assert stats.steps_spent > 0 and stats.trials > 1
        # the shrunk repro still fails under replay
        detector = replay_trace(trace, CONFIG)
        detector.finalize(partial=not trace.ok)
        assert trace.status != "ok"

    def test_non_reproducing_failure_reports_not_reproduced(self):
        wl = Workload(name="triage_healthy", build=flag_handoff_program, seed=1)
        trace, stats = shrink_failure(
            wl.fresh_program,
            failure_predicate("livelock"),  # a healthy run never livelocks
            seed=1,
            max_steps=100_000,
        )
        assert trace is None and stats.status == "not-reproduced"
        assert stats.nopped == 0

    def test_budget_bounds_the_loop(self):
        case = _case("drop-flag-store")
        spec = chaos_spec(case, CONFIG)
        _, stats = shrink_failure(
            spec.resolve().fresh_program,
            failure_predicate("livelock"),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
            step_budget=1,  # exhausted after the baseline run
        )
        assert stats.trials <= 2


class TestCaptureAndReplay:
    def test_capture_writes_committed_format_artifact(self, tmp_path):
        case = _case("drop-flag-store")
        spec = chaos_spec(case, CONFIG)
        record = _failure_record(spec, "timeout", 2, "exceeded 0.1s")
        dest = capture_failure(
            spec, record, tmp_path, key="ab" * 32, isolate=False
        )
        assert dest is not None
        meta = json.loads((dest / "repro.json").read_text())
        assert meta["format"] == ARTIFACT_KIND and meta["version"] == 1
        assert meta["trace_status"] == "livelock"
        assert (dest / "trace.json").exists()
        assert meta["shrunk"] and (dest / "shrunk_trace.json").exists()
        assert meta["shrink"]["nopped"] > 0
        # the tool config round-trips through the artifact
        assert ToolConfig(**meta["config"]) == CONFIG

    def test_replay_artifact_reproduces_shrunk_failure(self, tmp_path):
        case = _case("drop-flag-store")
        spec = chaos_spec(case, CONFIG)
        record = _failure_record(spec, "livelock", 1, "")
        dest = capture_failure(spec, record, tmp_path, isolate=False)
        trace, detector = replay_artifact(dest, shrunk=True)
        assert trace.status == "livelock"
        assert detector.report is not None
        # a different tool can analyze the same failing execution
        trace2, _ = replay_artifact(dest, config="helgrind-lib", shrunk=True)
        assert trace2.status == "livelock"

    def test_isolated_capture_survives_a_crashing_workload(self, tmp_path):
        def exit_build():
            import os

            os._exit(17)

        wl = Workload(name="triage_exit", build=exit_build, seed=1)
        spec = RunSpec(wl, CONFIG, 1)
        record = _failure_record(spec, "crash", 1, "exit code 17")
        # isolate=True forks the capture: the os._exit kills the child,
        # not this test process, and capture reports failure gracefully
        dest = capture_failure(spec, record, tmp_path, isolate=True, timeout_s=30)
        assert dest is None

    def test_load_artifact_rejects_foreign_json(self, tmp_path):
        (tmp_path / "repro.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_artifact(tmp_path)


class TestSweepForensics:
    def test_failed_run_produces_artifact(self, tmp_path):
        from tests.harness.test_parallel import _spin_forever_program

        # a busy spin that exhausts a 300k-step budget: slow enough to
        # trip a 50ms wall-clock timeout in the pool, fast enough for
        # the forensic re-run (which is step- not wall-clock-bounded)
        wl = Workload(
            name="triage_slow_spin",
            build=_spin_forever_program,
            seed=1,
            max_steps=300_000,
        )
        spec = RunSpec(wl, CONFIG, 1)
        result = run_sweep(
            [spec],
            workers=1,
            timeout_s=0.05,
            retries=0,
            forensics_dir=tmp_path,
        )
        (rec,) = result.records
        assert rec.status == "timeout"
        artifacts = list(tmp_path.glob("*/repro.json"))
        assert len(artifacts) == 1
        meta = json.loads(artifacts[0].read_text())
        assert meta["record"]["status"] == "timeout"
        assert meta["trace_status"] == "step-limit"


class TestChaosForensics:
    def test_oracle_mismatch_produces_shrunk_artifact(self, tmp_path):
        # force a mismatch: the case expects "ok" but the fault livelocks
        case = dataclasses.replace(
            _case("drop-flag-store"), expect_statuses=("ok",), expect_cond_symbol=""
        )
        report = run_chaos(
            cases=[case], config=CONFIG, workers=0, forensics_dir=tmp_path
        )
        assert not report.ok
        artifacts = list(tmp_path.glob("*/repro.json"))
        assert len(artifacts) == 1
        dest = artifacts[0].parent
        trace, _ = replay_artifact(dest, shrunk=True)
        # the shrunk repro still violates the (doctored) oracle
        assert chaos_oracle_predicate(case, CONFIG)(trace)

    def test_passing_chaos_suite_writes_no_artifacts(self, tmp_path):
        cases = [_case("drop-flag-store")]
        report = run_chaos(
            cases=cases, config=CONFIG, workers=0, forensics_dir=tmp_path
        )
        assert report.ok
        assert list(tmp_path.glob("*/repro.json")) == []
