"""Runner, table formatting, and perf measurement."""

from repro.detectors import ToolConfig
from repro.harness.perf import measure_overhead, overhead_summary
from repro.harness.runner import run_bare, run_workload
from repro.harness.tables import contexts_table, format_table, suite_table
from repro.harness.workload import Workload

from tests.conftest import flag_handoff_program


def _wl(seed=1):
    return Workload(name="handoff", build=flag_handoff_program, seed=seed)


class TestRunner:
    def test_run_workload_outcome_fields(self):
        out = run_workload(_wl(), ToolConfig.helgrind_lib_spin(7))
        assert out.ok
        assert out.steps > 0
        assert out.events > 0
        assert out.detector_words > 0
        assert out.imap_words > 0
        assert out.spin_loops >= 1  # the consumer loop + library loops
        assert out.adhoc_edges >= 1
        assert out.duration_s >= 0

    def test_no_instrumentation_without_spin(self):
        out = run_workload(_wl(), ToolConfig.helgrind_lib())
        assert out.imap_words == 0
        assert out.spin_loops == 0
        assert out.adhoc_edges == 0

    def test_seed_override(self):
        a = run_workload(_wl(seed=1), ToolConfig.drd(), seed=9)
        assert a.seed == 9

    def test_run_bare(self):
        assert run_bare(_wl()) >= 0

    def test_instrumentation_phase_is_timed(self):
        """Regression: the spin configuration pays a static analysis pass
        before execution; it must be measured, not silently dropped."""
        out = run_workload(_wl(), ToolConfig.helgrind_lib_spin(7))
        assert out.instrument_s > 0
        assert out.total_s == out.duration_s + out.instrument_s

    def test_no_instrumentation_time_without_spin(self):
        out = run_workload(_wl(), ToolConfig.helgrind_lib())
        assert out.instrument_s == 0
        assert out.total_s == out.duration_s


class TestTables:
    def test_format_alignment(self):
        text = format_table(["A", "BBBB"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_float_formatting(self):
        text = format_table(["x"], [[1.0], [2.55]])
        assert "1" in text and "2.5" in text and "1.0" not in text

    def test_suite_table(self):
        rows = [
            {
                "tool": "t",
                "false_alarms": 1,
                "missed_races": 2,
                "failed": 3,
                "correct": 117,
            }
        ]
        text = suite_table(rows, "T1")
        assert "117" in text and "Tool" in text

    def test_contexts_table_with_meta(self):
        data = {"prog": {"A": 1.0, "B": 1000.0}}
        meta = {"prog": {"model": "POSIX", "instructions": 42}}
        text = contexts_table(data, ["A", "B"], "T4", meta)
        assert "POSIX" in text and "1000" in text and "42" in text


class TestPerf:
    def test_measure_overhead_row_fields(self):
        rows = measure_overhead([_wl()], repeats=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.lib_words > 0
        assert row.spin_words > 0
        # The spin feature's footprint change is small in either direction:
        # marker tables and engine state add words, while suppressed flag
        # accesses and eliminated warnings remove shadow/report words.
        assert 0.5 < row.memory_overhead < 2.0
        assert row.runtime_overhead > 0

    def test_overhead_includes_instrumentation_phase(self):
        """Regression: the runtime-overhead figure (slide 32) must charge
        the spin configuration for its instrumentation phase."""
        rows = measure_overhead([_wl()], repeats=1)
        row = rows[0]
        assert row.spin_instr_s > 0
        assert row.spin_total_s == row.spin_s + row.spin_instr_s
        expected = row.spin_total_s / row.lib_total_s
        assert abs(row.runtime_overhead - expected) < 1e-12
        # the instrumented configuration is strictly more expensive than
        # its machine+detector time alone
        assert row.spin_total_s > row.spin_s

    def test_overhead_summary(self):
        rows = measure_overhead([_wl()], repeats=1)
        summary = overhead_summary(rows)
        assert 0.5 < summary["memory"] < 2.0
        assert summary["runtime"] > 0

    def test_empty_summary_is_nan(self):
        import math

        s = overhead_summary([])
        assert math.isnan(s["memory"]) and math.isnan(s["runtime"])
