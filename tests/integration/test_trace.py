"""Trace record/replay: fidelity against live runs, serialization."""

import pytest

from repro.detectors import ToolConfig
from repro.trace import Trace, record_trace, replay_trace
from repro.workloads.dr_test.suite import build_suite

from tests.conftest import detect, flag_handoff_program

SUITE = {w.name: w for w in build_suite()}


def _live(program, config, seed):
    det, result = detect(program, config, seed=seed, max_steps=500_000)
    assert result.ok
    return det.report


class TestReplayFidelity:
    @pytest.mark.parametrize(
        "case",
        [
            "adhoc_flag_basic",
            "adhoc7_handoff",
            "hard_funcptr",
            "locks_mutex_counter_t2",
            "locks_taslock_t2",
            "racy_counter_t2",
            "racy_lockmask_basic",
            "cv_handoff_c1",
        ],
    )
    def test_replay_matches_live_for_every_tool(self, case):
        """One recorded execution, replayed under each tool, must report
        exactly what a live run with the same seed reports."""
        wl = SUITE[case]
        trace = record_trace(wl.build(), seed=wl.seed, max_blocks=8)
        assert trace.ok
        for config in ToolConfig.paper_tools(7):
            live = _live(wl.build(), config, wl.seed)
            replayed = replay_trace(trace, config).report
            assert replayed.contexts == live.contexts, (case, config.name)

    def test_replay_spin_window_filtering(self):
        """A size-7 loop must be visible to spin(7) replays and invisible
        to spin(6) replays of the same trace."""
        wl = SUITE["adhoc7_handoff"]
        trace = record_trace(wl.build(), seed=wl.seed, max_blocks=8)
        clean = replay_trace(trace, ToolConfig.helgrind_lib_spin(7))
        noisy = replay_trace(trace, ToolConfig.helgrind_lib_spin(6))
        assert clean.report.racy_contexts == 0
        assert noisy.report.racy_contexts > 0

    def test_replay_universal_hybrid(self):
        wl = SUITE["locks_taslock_t2"]
        trace = record_trace(wl.build(), seed=wl.seed)
        nolib = replay_trace(trace, ToolConfig.helgrind_nolib_spin(7))
        univ = replay_trace(trace, ToolConfig.universal_hybrid(7))
        assert nolib.report.racy_contexts > 0
        assert univ.report.racy_contexts == 0

    def test_replay_wider_window_than_recording_rejected(self):
        trace = record_trace(flag_handoff_program(), max_blocks=4)
        with pytest.raises(ValueError, match="max_blocks"):
            replay_trace(trace, ToolConfig.helgrind_lib_spin(7))

    def test_replay_mismatched_inline_depth_rejected(self):
        from dataclasses import replace

        trace = record_trace(flag_handoff_program(), inline_depth=1)
        cfg = replace(ToolConfig.helgrind_lib_spin(7), inline_depth=2)
        with pytest.raises(ValueError, match="inline_depth"):
            replay_trace(trace, cfg)


class TestSerialization:
    def test_json_round_trip(self):
        trace = record_trace(flag_handoff_program(), seed=3)
        text = trace.to_json()
        back = Trace.from_json(text)
        assert back.program_name == trace.program_name
        assert back.seed == trace.seed
        assert back.steps == trace.steps
        assert back.loop_sizes == trace.loop_sizes
        assert back.lock_sites == trace.lock_sites
        assert back.symbols == trace.symbols
        assert back.events == trace.events
        assert back.status == trace.status == "ok"

    def test_json_is_stable_across_cache_schema_bumps(self, monkeypatch):
        """Trace artifacts outlive cache generations: the JSON layout must
        not depend on the harness CACHE_SCHEMA in any way."""
        import repro.harness.checkpoint as checkpoint

        trace = record_trace(flag_handoff_program(), seed=3)
        before = trace.to_json()
        monkeypatch.setattr(checkpoint, "CACHE_SCHEMA", checkpoint.CACHE_SCHEMA + 1)
        assert trace.to_json() == before
        back = Trace.from_json(before)
        assert back.events == trace.events and back.status == trace.status

    def test_from_json_tolerates_pre_status_traces(self):
        """Artifacts recorded before the status field still load."""
        import json

        trace = record_trace(flag_handoff_program(), seed=3)
        data = json.loads(trace.to_json())
        del data["status"]
        back = Trace.from_json(json.dumps(data))
        assert back.status == "ok"
        data["ok"] = False
        assert Trace.from_json(json.dumps(data)).status == "step-limit"

    def test_fault_events_round_trip(self):
        """Chaos traces carry injected-fault events; forensics needs them
        to survive serialization."""
        from repro.harness.chaos import chaos_spec
        from repro.detectors import ToolConfig as TC
        from repro.vm import events as ev
        from repro.workloads.dr_test.faults import chaos_cases

        case = next(c for c in chaos_cases() if c.name == "drop-flag-store")
        spec = chaos_spec(case, TC.helgrind_lib_spin(7))
        trace = record_trace(
            spec.resolve().fresh_program(),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        assert trace.status == "livelock"
        assert any(isinstance(e, ev.StoreDroppedEvent) for e in trace.events)
        back = Trace.from_json(trace.to_json())
        assert back.events == trace.events
        assert back.status == "livelock"

    def test_round_tripped_trace_replays_identically(self):
        trace = record_trace(flag_handoff_program(), seed=3)
        back = Trace.from_json(trace.to_json())
        for config in ToolConfig.paper_tools(7):
            a = replay_trace(trace, config).report
            b = replay_trace(back, config).report
            assert a.contexts == b.contexts

    def test_symbol_map_reconstruction(self):
        trace = record_trace(flag_handoff_program())
        sm = trace.symbol_map()
        assert sm.resolve(sm.base_of("FLAG")) == "FLAG"
        assert sm.resolve(sm.base_of("DATA")) == "DATA"


class TestTraceContents:
    def test_events_cover_all_kinds(self):
        from repro.vm import events as ev

        wl = SUITE["cv_handoff_c1"]
        trace = record_trace(wl.build(), seed=wl.seed)
        kinds = {type(e) for e in trace.events}
        assert ev.MemRead in kinds
        assert ev.MemWrite in kinds
        assert ev.LibEnter in kinds
        assert ev.ThreadSpawnEvent in kinds
        assert ev.MarkedCondRead in kinds

    def test_loop_sizes_recorded(self):
        trace = record_trace(flag_handoff_program())
        assert trace.loop_sizes
        assert all(1 <= size <= 8 for size in trace.loop_sizes.values())
