"""Suite-wide ground-truth sweep: every race-free case is schedule-stable.

The strongest declaration check in the repository: all ~90 race-free
suite cases are executed under several adversarial + random schedules
with *no detector attached*; their observable outcomes must never
diverge.  (Racy cases are checked individually in test_oracle.py —
manifestation depends on the race's observability.)
"""

import pytest

from repro.harness.oracle import check_workload
from repro.workloads.dr_test.suite import build_suite

RACE_FREE = [w for w in build_suite() if not w.is_racy]


@pytest.mark.parametrize("wl", RACE_FREE, ids=lambda w: w.name)
def test_race_free_case_is_schedule_stable(wl):
    verdict = check_workload(wl, seeds=range(3))
    assert verdict.verdict == "stable", verdict
