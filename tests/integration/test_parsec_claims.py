"""Integration tests for the PARSEC claims (slides 27-30)."""

import pytest

from repro.detectors import ToolConfig
from repro.harness.runner import run_workload
from repro.workloads.parsec.registry import (
    WITH_ADHOC,
    WITHOUT_ADHOC,
    parsec_workloads,
)


@pytest.fixture(scope="module")
def contexts():
    """{program: {tool: contexts}} over one seed (shape, not averages)."""
    out = {}
    for wl in parsec_workloads():
        out[wl.name] = {
            cfg.name: run_workload(wl, cfg, seed=1).report.racy_contexts
            for cfg in ToolConfig.paper_tools(7)
        }
    return out


LIB = "Helgrind+ lib"
SPIN = "Helgrind+ lib+spin(7)"
NOLIB = "Helgrind+ nolib+spin(7)"
DRD = "DRD"


class TestProgramsWithoutAdhoc:
    def test_first_four_programs_clean_everywhere(self, contexts):
        """Slide 27: no false positives for the first 4 programs."""
        for name in ("blackscholes", "swaptions", "fluidanimate", "canneal"):
            for tool, n in contexts[name].items():
                assert n == 0, (name, tool)

    def test_freqmine_unknown_library_two_residuals(self, contexts):
        """Slide 27: with the unknown OpenMP library, only 2 remain."""
        c = contexts["freqmine"]
        assert c[LIB] > 50
        assert c[SPIN] <= 3
        assert c[NOLIB] <= 3
        assert c[DRD] == 1000


class TestProgramsWithAdhoc:
    def test_five_of_eight_completely_eliminated(self, contexts):
        """Slide 28: in 5 out of 8 programs FPs are completely gone."""
        eliminated = [
            name for name in WITH_ADHOC if contexts[name][SPIN] == 0
        ]
        assert len(eliminated) >= 5, eliminated

    def test_residual_programs_small(self, contexts):
        """Slide 29: the remaining programs produce 2 to ~19 warnings."""
        residual = [name for name in WITH_ADHOC if contexts[name][SPIN] > 0]
        assert residual  # bodytrack / ferret / x264 style leftovers
        for name in residual:
            assert 1 <= contexts[name][SPIN] <= 25, name

    def test_spin_always_improves_on_lib(self, contexts):
        for name in WITH_ADHOC:
            assert contexts[name][SPIN] <= contexts[name][LIB], name

    def test_dedup_inversion(self, contexts):
        """Slide 28's oddest cell: hybrid-lib saturates, DRD is clean."""
        c = contexts["dedup"]
        assert c[LIB] == 1000
        assert c[SPIN] == 0
        assert c[DRD] <= 1

    def test_drd_capped_on_array_heavy_programs(self, contexts):
        for name in ("facesim", "streamcluster", "raytrace", "x264"):
            assert contexts[name][DRD] == 1000, name

    def test_nolib_worst_on_taslock_programs(self, contexts):
        """bodytrack/ferret: CAS-retry locks are invisible to nolib."""
        for name in ("bodytrack", "ferret"):
            assert contexts[name][NOLIB] > contexts[name][SPIN], name


class TestSeedStability:
    def test_race_free_programs_stay_clean_across_seeds(self):
        from repro.workloads.parsec.registry import parsec_workload

        wl = parsec_workload("blackscholes")
        for seed in range(1, 5):
            out = run_workload(wl, ToolConfig.helgrind_lib_spin(7), seed=seed)
            assert out.ok and out.report.racy_contexts == 0

    def test_vips_clean_under_spin_across_seeds(self):
        from repro.workloads.parsec.registry import parsec_workload

        wl = parsec_workload("vips")
        for seed in range(1, 4):
            out = run_workload(wl, ToolConfig.helgrind_lib_spin(7), seed=seed)
            assert out.ok and out.report.racy_contexts == 0
