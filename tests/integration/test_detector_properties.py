"""Property-based end-to-end detector invariants.

These run complete programs under random seeds and assert detector-level
invariants — the strongest correctness statements in the repository:

* soundness of the spin feature's *suppression*: a correctly
  synchronized ad-hoc program reports nothing under lib+spin, for any
  schedule;
* completeness floor: a blatant unsynchronized race is reported by every
  tool, for any schedule;
* the spin feature never *adds* reports to a program with no ad-hoc
  synchronization.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import ToolConfig
from repro.isa.instructions import Const, Mov
from repro.runtime import MUTEX_SIZE
from repro.workloads.common import (
    counted_loop,
    finish_main,
    make_condition_helper,
    new_program,
    spin_flag_2bb,
    spin_with_helper,
)

from tests.conftest import detect


def _adhoc_program(consumers: int, data_words: int, helper_blocks: int):
    pb = new_program("prop_adhoc")
    pb.global_("FLAG", 1)
    pb.global_("DATA", data_words)
    helper = None
    if helper_blocks:
        helper = make_condition_helper(pb, "chk", helper_blocks, expect=1)

    prod = pb.function("producer")
    d = prod.addr("DATA")
    for k in range(data_words):
        prod.store(d, k + 1, offset=k)
    prod.store_global("FLAG", 1)
    prod.ret()

    cons = pb.function("consumer")
    f = cons.addr("FLAG")
    if helper:
        spin_with_helper(cons, helper, f)
    else:
        spin_flag_2bb(cons, f, expect=1)
    d = cons.addr("DATA")
    s = cons.reg("s")
    cons.emit(Const(s, 0))
    for k in range(data_words):
        cons.emit(Mov(s, cons.add(s, cons.load(d, offset=k))))
    cons.ret(s)

    mn = pb.function("main")
    tids = [mn.spawn("consumer", []) for _ in range(consumers)]
    tids.append(mn.spawn("producer", []))
    finish_main(mn, tids)
    return pb.build()


def _racy_program(threads: int, iters: int):
    pb = new_program("prop_racy")
    pb.global_("C", 1)
    w = pb.function("worker")

    def body(fb, i):
        a = fb.addr("C")
        fb.store(a, fb.add(fb.load(a), 1))

    counted_loop(w, iters, body)
    w.ret()
    mn = pb.function("main")
    tids = [mn.spawn("worker", []) for _ in range(threads)]
    finish_main(mn, tids)
    return pb.build()


def _locked_program(threads: int, iters: int):
    pb = new_program("prop_locked")
    pb.global_("C", 1)
    pb.global_("M", MUTEX_SIZE)
    w = pb.function("worker")

    def body(fb, i):
        m = fb.addr("M")
        fb.call("mutex_lock", [m])
        a = fb.addr("C")
        fb.store(a, fb.add(fb.load(a), 1))
        fb.call("mutex_unlock", [m])

    counted_loop(w, iters, body)
    w.ret()
    mn = pb.function("main")
    tids = [mn.spawn("worker", []) for _ in range(threads)]
    finish_main(mn, tids)
    return pb.build()


@given(
    seed=st.integers(0, 10_000),
    consumers=st.integers(1, 3),
    data_words=st.integers(1, 4),
    helper_blocks=st.sampled_from([0, 2, 5]),
)
@settings(max_examples=40, deadline=None)
def test_correct_adhoc_sync_never_reported_under_spin(
    seed, consumers, data_words, helper_blocks
):
    program = _adhoc_program(consumers, data_words, helper_blocks)
    for config in (ToolConfig.helgrind_lib_spin(7), ToolConfig.helgrind_nolib_spin(7)):
        det, result = detect(program, config, seed=seed)
        assert result.ok
        assert det.report.racy_contexts == 0, (seed, config.name)


@given(seed=st.integers(0, 10_000), threads=st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_blatant_race_reported_by_every_tool(seed, threads):
    program = _racy_program(threads, iters=6)
    for config in ToolConfig.paper_tools(7):
        det, result = detect(program, config, seed=seed)
        assert result.ok
        assert "C" in det.report.reported_base_symbols, (seed, config.name)


@given(seed=st.integers(0, 10_000), threads=st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_spin_feature_is_monotone_on_library_programs(seed, threads):
    """Adding the spin feature never introduces reports on a program
    whose synchronization the detector already understands."""
    program = _locked_program(threads, iters=4)
    base, _ = detect(program, ToolConfig.helgrind_lib(), seed=seed)
    spin, _ = detect(program, ToolConfig.helgrind_lib_spin(7), seed=seed)
    assert base.report.racy_contexts == 0
    assert spin.report.racy_contexts == 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_non_spin_tools_always_flag_adhoc(seed):
    """Complement of suppression: without spin knowledge the ad-hoc
    program is *always* a false-positive source, whatever the schedule."""
    program = _adhoc_program(1, 2, 0)
    det, result = detect(program, ToolConfig.helgrind_lib(), seed=seed)
    assert result.ok
    assert "DATA" in det.report.reported_base_symbols
