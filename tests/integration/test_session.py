"""The one-call session API: repro.run() end to end."""

import pytest

import repro
from repro import ProgramBuilder, ToolConfig, build_library
from repro.harness.registry import resolve_workload, workload_names
from repro.harness.runner import run_workload
from repro.session import SessionResult
from repro.vm.faults import DropStore, FaultPlan


def _adhoc_builder():
    pb = ProgramBuilder("session_adhoc")
    pb.global_("FLAG", 1)
    pb.global_("DATA", 1)
    producer = pb.function("producer")
    producer.store_global("DATA", 7)
    producer.store_global("FLAG", 1)
    producer.ret()
    consumer = pb.function("consumer")
    f = consumer.addr("FLAG")
    consumer.jmp("spin")
    consumer.label("spin")
    v = consumer.load(f)
    consumer.br(consumer.eq(v, 0), "body", "go")
    consumer.label("body")
    consumer.yield_()
    consumer.jmp("spin")
    consumer.label("go")
    consumer.print_(consumer.load_global("DATA"))
    consumer.ret()
    main = pb.function("main")
    t1 = main.spawn("consumer", [])
    t2 = main.spawn("producer", [])
    main.join(t1)
    main.join(t2)
    main.halt()
    pb.link(build_library())
    return pb


def test_run_program_builder_default_tool():
    session = repro.run(_adhoc_builder())
    assert isinstance(session, SessionResult)
    assert session.ok
    assert session.config == ToolConfig.helgrind_lib_spin(7)
    assert session.seed == 1
    # the default tool identifies the ad-hoc flag handoff: no warnings
    assert session.racy_contexts == 0
    assert session.report is session.detector.report
    assert session.instrumentation is not None
    assert session.workload is None


def test_run_built_program_and_preset_name():
    program = _adhoc_builder().build()
    session = repro.run(program, "helgrind-lib")
    assert session.config == ToolConfig.helgrind_lib()
    # no spin feature -> no instrumentation phase, and the apparent
    # race on DATA/FLAG is reported
    assert session.instrumentation is None
    assert session.instrument_s == 0.0
    assert session.racy_contexts > 0


def test_run_program_factory():
    session = repro.run(lambda: _adhoc_builder().build(), "drd")
    assert session.ok
    assert session.config == ToolConfig.drd()


def test_run_workload_name_uses_pinned_seed():
    name = workload_names()[0]
    wl = resolve_workload(name)
    session = repro.run(name)
    assert session.workload is not None
    assert session.workload.name == name
    assert session.seed == wl.seed


def test_run_matches_run_workload_report():
    name = workload_names()[0]
    wl = resolve_workload(name)
    cfg = ToolConfig.helgrind_lib_spin(7)
    session = repro.run(wl, cfg)
    outcome = run_workload(wl, cfg)
    assert session.report.fingerprint() == outcome.report.fingerprint()


def test_symbolization_wired_automatically():
    session = repro.run(_adhoc_builder(), "helgrind-lib")
    assert session.racy_contexts > 0
    text = " ".join(str(w) for w in session.warnings)
    # symbolized names, not bare hex ("race on 0x1000 (addr 0x1000)")
    assert "on DATA" in text and "on FLAG" in text
    assert "on 0x" not in text


def test_explicit_symbolizer_wins():
    session = repro.run(
        _adhoc_builder(), "helgrind-lib", symbolize=lambda addr: f"sym<{addr}>"
    )
    text = " ".join(str(w) for w in session.warnings)
    assert "sym<" in text


def test_faults_and_livelock_passthrough():
    plan = FaultPlan(
        faults=(DropStore(symbol="FLAG", index=0, offset=0),),
        seed=0,
        name="drop-flag",
    )
    session = repro.run(
        _adhoc_builder(), "helgrind-lib-spin7", faults=plan, livelock_bound=2000
    )
    # the consumer spins forever on the never-written flag
    assert not session.ok
    assert session.result.status == "livelock"
    assert session.report.partial


def test_rejects_non_programs():
    with pytest.raises(TypeError):
        repro.run(42)
    with pytest.raises(TypeError):
        repro.run(lambda: "not a program")
    with pytest.raises(KeyError):
        repro.run("no-such-workload-name")


def test_session_result_str_and_summary():
    session = repro.run(_adhoc_builder())
    text = str(session)
    assert "session_adhoc" in text
    assert "racy_contexts=0" in text
    assert session.summary() == session.report.summary()
