"""Trace event codec: every event kind round-trips, and the wire format
is pinned by a committed golden file.

The trace store persists recordings across cache generations (its
TRACE_SCHEMA is deliberately independent of CACHE_SCHEMA), so the
encoded form of every event kind — including all six injected-fault
codes ``fk fd fy fw fs fc`` — is a compatibility surface.  A codec
change that breaks decoding of stored traces must show up here as a
golden-file diff, not as silent quarantining in the field.
"""

import gzip
import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.program import CodeLocation, SyncKind
from repro.trace import (
    TraceStore,
    TraceStreamCorruption,
    open_trace_file,
    record_trace,
)
from repro.trace.store import _DIGEST_LEN, _TRACE_HEADER
from repro.trace.trace import _decode_event, _encode_event, _loc_parse, _loc_str
from repro.vm import events as ev

from tests.conftest import flag_handoff_program

GOLDEN = Path(__file__).parent.parent / "data" / "trace_codec_golden.json"

# -- strategies -------------------------------------------------------------

_ident = st.from_regex(r"[a-z_][a-z0-9_]{0,12}", fullmatch=True)
_step = st.integers(min_value=0, max_value=2**40)
_tid = st.integers(min_value=0, max_value=255)
_addr = st.integers(min_value=0, max_value=2**32)
_value = st.integers(min_value=-(2**31), max_value=2**31)
_loop = st.integers(min_value=0, max_value=1000)
_loc = st.builds(CodeLocation, _ident, _ident, st.integers(min_value=0, max_value=999))
_kind = st.sampled_from(list(SyncKind))
_obj2 = st.none() | _addr

_events = st.one_of(
    st.builds(ev.MemRead, _step, _tid, _addr, _value, _loc, st.booleans(), st.booleans()),
    st.builds(ev.MemWrite, _step, _tid, _addr, _value, _loc, st.booleans(), st.booleans()),
    st.builds(ev.MarkedCondRead, _step, _tid, _loop, _addr, _value, _loc, st.booleans()),
    st.builds(ev.MarkedLoopEnter, _step, _tid, _loop, _loc, st.booleans()),
    st.builds(ev.MarkedLoopExit, _step, _tid, _loop, _loc, st.booleans()),
    st.builds(ev.LibEnter, _step, _tid, _ident, _kind, _addr, _loc, st.booleans(), _obj2),
    st.builds(ev.LibExit, _step, _tid, _ident, _kind, _addr, _loc, st.booleans(), _obj2),
    st.builds(ev.ThreadSpawnEvent, _step, _tid, _tid, _loc),
    st.builds(ev.ThreadJoinEvent, _step, _tid, _tid, _loc),
    st.builds(ev.ThreadStartEvent, _step, _tid),
    st.builds(ev.ThreadExitEvent, _step, _tid),
    st.builds(ev.PrintEvent, _step, _tid, _value, _loc),
    st.builds(ev.ThreadKilledEvent, _step, _tid),
    st.builds(ev.StoreDroppedEvent, _step, _tid, _addr, _value, _loc),
    st.builds(ev.StoreDelayedEvent, _step, _tid, _addr, _value, _loop, _loc),
    st.builds(ev.SpuriousWakeEvent, _step, _tid, _addr, _value),
    st.builds(ev.StarvationEvent, _step, _tid, _loop),
    st.builds(ev.StepBudgetClampedEvent, _step, _tid, _step),
)

#: every wire code the codec emits, fault codes included
ALL_CODES = {
    "r", "w", "cr", "le", "lx", "li", "lo", "sp", "jn", "ts", "tx", "pr",
    "fk", "fd", "fy", "fw", "fs", "fc",
}


class TestRoundTrip:
    @settings(max_examples=400)
    @given(_events)
    def test_decode_inverts_encode(self, event):
        assert _decode_event(_encode_event(event)) == event

    @settings(max_examples=200)
    @given(_events)
    def test_json_transport_is_lossless(self, event):
        # The store ships events through JSON lines; ints/strings/None
        # must survive serialization, not merely the in-process lists.
        wire = json.loads(json.dumps(_encode_event(event)))
        assert _decode_event(wire) == event
        assert _encode_event(_decode_event(wire)) == _encode_event(event)

    @settings(max_examples=200)
    @given(_loc)
    def test_location_round_trip(self, loc):
        assert _loc_parse(_loc_str(loc)) == loc

    @given(_events)
    @settings(max_examples=100)
    def test_codes_are_known(self, event):
        assert _encode_event(event)[0] in ALL_CODES


def _golden_events():
    """One representative instance per wire code, in golden-file order."""
    loc = CodeLocation("main", "entry", 3)
    return [
        ev.MemRead(10, 1, 4096, 7, loc, False, False),
        ev.MemWrite(11, 2, 4097, -1, loc, True, True),
        ev.MarkedCondRead(12, 1, 5, 4098, 0, loc, False),
        ev.MarkedLoopEnter(13, 1, 5, loc, False),
        ev.MarkedLoopExit(14, 1, 5, loc, True),
        ev.LibEnter(15, 2, "lock_acquire", SyncKind.LOCK_ACQUIRE, 8192, loc, False, None),
        ev.LibExit(16, 2, "cv_wait", SyncKind.CV_WAIT, 8193, loc, True, 8200),
        ev.ThreadSpawnEvent(17, 0, 1, loc),
        ev.ThreadJoinEvent(18, 0, 1, loc),
        ev.ThreadStartEvent(19, 1),
        ev.ThreadExitEvent(20, 1),
        ev.PrintEvent(21, 1, 42, loc),
        ev.ThreadKilledEvent(22, 3),
        ev.StoreDroppedEvent(23, 3, 4099, 9, loc),
        ev.StoreDelayedEvent(24, 3, 4100, 9, 6, loc),
        ev.SpuriousWakeEvent(25, 3, 8194, 1),
        ev.StarvationEvent(26, 3, 50),
        ev.StepBudgetClampedEvent(27, 0, 100000),
    ]


class TestGoldenFile:
    """The committed golden file pins the wire format.

    A failure here means the codec changed shape: either fix the codec
    or bump TRACE_SCHEMA *and* regenerate the golden file deliberately.
    """

    def test_golden_covers_every_code(self):
        golden = json.loads(GOLDEN.read_text())
        assert {row[0] for row in golden} == ALL_CODES

    def test_encode_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        assert [_encode_event(e) for e in _golden_events()] == golden

    def test_golden_decodes_to_expected_events(self):
        golden = json.loads(GOLDEN.read_text())
        assert [_decode_event(row) for row in golden] == _golden_events()


# -- truncated / corrupt stream family --------------------------------------

_HEADER_LEN = _TRACE_HEADER.size + _DIGEST_LEN


def _reframe(data: bytes, payload: bytes) -> bytes:
    """Swap in a new payload under a *valid* checksum.

    The frame digest passes, so the corruption is only discoverable by
    actually decoding — exactly the failure mode a torn write or a
    buggy producer leaves behind.
    """
    return data[:_TRACE_HEADER.size] + hashlib.sha256(payload).digest() + payload


def _cut_mid_gzip_member(data: bytes) -> bytes:
    """Truncate the gzip payload mid-member (checksum recomputed)."""
    payload = data[_HEADER_LEN:]
    return _reframe(data, payload[: int(len(payload) * 0.6)])


def _cut_mid_jsonl_line(data: bytes) -> bytes:
    """Cut the decompressed JSONL mid-line, recompress as a *complete*
    gzip member (checksum recomputed) — the gzip layer is happy, the
    JSON layer is not."""
    raw = gzip.decompress(data[_HEADER_LEN:])
    third_newline = -1
    for _ in range(3):
        third_newline = raw.index(b"\n", third_newline + 1)
    cut = raw[: third_newline + 6]  # a few bytes into the fourth line
    assert not cut.endswith(b"\n")
    return _reframe(data, gzip.compress(cut))


def _drop_last_event_line(data: bytes) -> bytes:
    """Remove one complete event line — well-formed JSONL whose count
    disagrees with the metadata line."""
    raw = gzip.decompress(data[_HEADER_LEN:])
    lines = raw.rstrip(b"\n").split(b"\n")
    return _reframe(data, gzip.compress(b"\n".join(lines[:-1]) + b"\n"))


_CUTS = {
    "mid-gzip-member": _cut_mid_gzip_member,
    "mid-jsonl-line": _cut_mid_jsonl_line,
}


def _corrupted_store(tmp_path, corrupt):
    store = TraceStore(tmp_path)
    store.put("k", record_trace(flag_handoff_program(), seed=2))
    path = store._path("k")
    path.write_bytes(corrupt(path.read_bytes()))
    return store


class TestCorruptStreams:
    """Checksum-valid but malformed payloads quarantine as structured
    misses in *both* decoders — the materializing ``get`` and the
    streaming ``open_stream`` — never as exceptions reaching a sweep."""

    @pytest.mark.parametrize("cut", sorted(_CUTS))
    def test_materializing_decoder_quarantines(self, tmp_path, cut):
        store = _corrupted_store(tmp_path, _CUTS[cut])
        assert store.get("k") is None  # structured miss, no raise
        assert store.misses == 1
        assert len(store.quarantined) == 1
        assert "undecodable" in store.quarantined[0].reason
        notes = list((tmp_path / "corrupt").glob("*.note.json"))
        assert len(notes) == 1
        assert store.get("k") is None  # entry is gone, clean miss now

    @pytest.mark.parametrize("cut", sorted(_CUTS))
    def test_streaming_decoder_quarantines(self, tmp_path, cut):
        store = _corrupted_store(tmp_path, _CUTS[cut])
        stream = store.open_stream("k")
        if stream is None:
            # the cut landed inside the metadata line: quarantined at open
            assert len(store.quarantined) == 1
        else:
            with pytest.raises(TraceStreamCorruption, match="undecodable"):
                for _ in stream.events():
                    pass
            store.quarantine_stream(stream, "undecodable mid-stream")
        assert list((tmp_path / "corrupt").glob("*.note.json"))
        assert store.open_stream("k") is None  # clean miss now

    def test_event_count_mismatch_is_corruption(self, tmp_path):
        # A payload that decodes fine but holds fewer events than its
        # metadata claims: the count check is the backstop.
        store = _corrupted_store(tmp_path, _drop_last_event_line)
        stream = store.open_stream("k")
        assert stream is not None
        with pytest.raises(TraceStreamCorruption, match="event-count-mismatch"):
            for _ in stream.events():
                pass

    def test_bare_file_corruption_raises_structurally(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put("k", record_trace(flag_handoff_program(), seed=2))
        path = store._path("k")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # bit-flip without reframing: checksum mismatch
        bare = tmp_path / "copy.trc"
        bare.write_bytes(bytes(blob))
        with pytest.raises(TraceStreamCorruption, match="checksum-mismatch"):
            open_trace_file(bare)

    def test_intact_entry_streams_identically_to_get(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = record_trace(flag_handoff_program(), seed=2)
        store.put("k", trace)
        stream = store.open_stream("k")
        streamed = [e for _seq, e in stream.events()]
        assert streamed == list(store.get("k").events)
