"""Sharded-analysis differential gate.

The tentpole guarantee of :mod:`repro.trace.shard`: partitioning a
recorded trace's access events by address region, analyzing the K shards
independently (each with its own detector), and merging the shard
reports yields a :class:`~repro.detectors.reports.Report` whose *full
fingerprint* is bit-identical to unsharded
:func:`~repro.trace.analyze_trace` — across the whole 120-case suite,
every named preset, K ∈ {1, 2, 4, 8}, and the chaos cases whose traces
truncate partially (deadlock / livelock / fault-killed threads).

Also pinned here: the shard-boundary edge cases (a race whose warnings
come from different shards, shards that receive only replicated sync
traffic, more shards than address regions, K=1 identity), the merge
invariant battery (:class:`~repro.trace.shard.ShardMergeError`), the
fork-pool path (``workers > 0`` is fingerprint-invisible), and the
``repro.run(trace=..., shards=K)`` session front door.
"""

import pytest

import repro
from repro.detectors import ToolConfig
from repro.harness.chaos import chaos_spec
from repro.harness.registry import resolve_tool
from repro.trace import (
    ShardMergeError,
    TraceStore,
    analyze_trace,
    analyze_trace_sharded,
    merge_shard_reports,
    plan_shards,
    record_trace,
    run_shard,
)
from repro.workloads.dr_test.faults import chaos_cases
from repro.workloads.dr_test.suite import build_suite

from tests.conftest import flag_handoff_program

SUITE = build_suite()
PRESET_NAMES = ToolConfig.presets()
PRESETS = [resolve_tool(name) for name in PRESET_NAMES]
SHARD_COUNTS = (1, 2, 4, 8)

#: instrumentation wide enough for every preset (the store convention)
MAX_BLOCKS = max([8, *(c.spin_max_blocks for c in PRESETS)])

_trace_memo = {}


def _recorded(wl):
    """One recording per suite case, shared across the preset params."""
    if wl.name not in _trace_memo:
        _trace_memo[wl.name] = record_trace(
            wl.build(), seed=wl.seed, max_steps=wl.max_steps, max_blocks=MAX_BLOCKS
        )
    return _trace_memo[wl.name]


class TestSuiteDifferential:
    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_sharded_fingerprint_equals_unsharded_across_the_suite(self, preset):
        cfg = resolve_tool(preset)
        mismatches = []
        for wl in SUITE:
            trace = _recorded(wl)
            base = analyze_trace(trace, cfg).report.fingerprint()
            for k in SHARD_COUNTS:
                sharded = analyze_trace_sharded(trace, cfg, shards=k, workers=0)
                if sharded.report.fingerprint() != base:
                    mismatches.append((wl.name, k))
        assert not mismatches, f"{preset}: sharded merge diverged on {mismatches}"


class TestChaosDifferential:
    """Partial traces: fault-truncated recordings must shard faithfully."""

    @pytest.mark.parametrize("case", [c.name for c in chaos_cases()])
    def test_chaos_sharded_matches_unsharded_for_every_preset(self, case):
        spec = chaos_spec(
            next(c for c in chaos_cases() if c.name == case),
            ToolConfig.helgrind_lib_spin(7),
        )
        trace = record_trace(
            spec.resolve().fresh_program(),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            max_blocks=MAX_BLOCKS,
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        mismatches = []
        for cfg in PRESETS:
            base = analyze_trace(trace, cfg).report
            for k in SHARD_COUNTS:
                sharded = analyze_trace_sharded(trace, cfg, shards=k, workers=0)
                assert sharded.report.partial == (trace.status != "ok")
                if sharded.report.fingerprint() != base.fingerprint():
                    mismatches.append((cfg.name, k))
        assert not mismatches, f"{case}: sharded merge diverged under {mismatches}"


class TestShardBoundaries:
    """The constructed edge cases a partition scheme can get wrong."""

    def _trace(self):
        if "flag_handoff" not in _trace_memo:
            _trace_memo["flag_handoff"] = record_trace(
                flag_handoff_program(), seed=2, max_blocks=MAX_BLOCKS
            )
        return _trace_memo["flag_handoff"]

    def test_k1_is_the_identity(self):
        trace = self._trace()
        cfg = resolve_tool("helgrind-lib")
        sharded = analyze_trace_sharded(trace, cfg, shards=1, workers=0)
        base = analyze_trace(trace, cfg)
        assert sharded.report.fingerprint() == base.report.fingerprint()
        assert sharded.shards == 1
        # one shard owns everything — nothing is replicated across peers
        assert sharded.plan.shards == 1
        assert set(sharded.plan.owner_of.values()) <= {0}

    def test_warnings_from_different_shards_merge_in_global_order(self):
        # Find a suite case whose racy addresses land in different shards
        # under K=8 — the merge's seq-sort is what keeps the report's
        # warning order (and therefore the fingerprint) global.
        cfg = resolve_tool("helgrind-lib")
        for wl in SUITE:
            trace = _recorded(wl)
            base = analyze_trace(trace, cfg)
            if base.report.racy_contexts < 2:
                continue
            reports = [run_shard(trace, cfg, i, 8) for i in range(8)]
            contributing = [r.shard_index for r in reports if r.warnings]
            if len(contributing) >= 2:
                merged = merge_shard_reports(reports)
                assert merged.fingerprint() == base.report.fingerprint()
                return
        pytest.fail("no suite case produced warnings from >= 2 shards at K=8")

    def test_sync_only_shards_still_merge(self):
        # With more shards than owned regions, some shards receive only
        # the replicated sync/ctrl stream; they must still contribute a
        # valid frontier and merge cleanly.
        trace = self._trace()
        cfg = resolve_tool("helgrind-lib-spin7")
        plan = plan_shards(trace, cfg, 8)
        owners = set(plan.owner_of.values())
        idle = set(range(8)) - owners
        assert idle, "expected at least one shard with no owned region"
        reports = [run_shard(trace, cfg, i, 8) for i in range(8)]
        for i in idle:
            assert not reports[i].warnings
        merged = merge_shard_reports(reports)
        assert merged.fingerprint() == analyze_trace(trace, cfg).report.fingerprint()

    def test_more_shards_than_regions(self):
        trace = self._trace()
        cfg = resolve_tool("helgrind-lib")
        sharded = analyze_trace_sharded(trace, cfg, shards=64, workers=0)
        assert sharded.report.fingerprint() == analyze_trace(
            trace, cfg
        ).report.fingerprint()

    def test_every_access_address_has_exactly_one_owner(self):
        trace = self._trace()
        cfg = resolve_tool("helgrind-lib-spin7")
        plan = plan_shards(trace, cfg, 4)
        reads, writes, _ = trace.batches()
        addrs = {r[2] for r in reads} | {w[2] for w in writes}
        for addr in addrs:
            assert addr in plan.owner_of
            assert 0 <= plan.owner_of[addr] < 4

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            analyze_trace_sharded(self._trace(), resolve_tool("drd"), shards=0)

    def test_shard_index_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="index"):
            run_shard(self._trace(), resolve_tool("drd"), 4, 4)


class TestMergeInvariants:
    """A merge over inconsistent shard reports must refuse, not guess."""

    def _reports(self, k=2):
        return [
            run_shard(self._trace(), resolve_tool("helgrind-lib"), i, k)
            for i in range(k)
        ]

    def _trace(self):
        if "flag_handoff" not in _trace_memo:
            _trace_memo["flag_handoff"] = record_trace(
                flag_handoff_program(), seed=2, max_blocks=MAX_BLOCKS
            )
        return _trace_memo["flag_handoff"]

    def test_empty_merge_rejected(self):
        with pytest.raises(ShardMergeError):
            merge_shard_reports([])

    def test_missing_shard_rejected(self):
        with pytest.raises(ShardMergeError, match="expected 2 shards"):
            merge_shard_reports(self._reports(2)[:1])

    def test_duplicate_shard_rejected(self):
        a, _ = self._reports(2)
        with pytest.raises(ShardMergeError, match="indices"):
            merge_shard_reports([a, a])

    def test_cross_tool_merge_rejected(self):
        trace = self._trace()
        a = run_shard(trace, resolve_tool("helgrind-lib"), 0, 2)
        b = run_shard(trace, resolve_tool("drd"), 1, 2)
        with pytest.raises(ShardMergeError):
            merge_shard_reports([a, b])

    def test_tampered_frontier_rejected(self):
        a, b = self._reports(2)
        tid = next(iter(a.frontier), None)
        if tid is None:
            pytest.skip("no threads in frontier")
        a.frontier[tid] += 7
        with pytest.raises(ShardMergeError, match="frontier"):
            merge_shard_reports([a, b])


class TestForkPool:
    """``workers > 0`` forks the shard analyses; results must be
    bit-identical to the serial reference path."""

    def test_forked_matches_serial(self):
        trace = record_trace(flag_handoff_program(), seed=2, max_blocks=MAX_BLOCKS)
        cfg = resolve_tool("helgrind-lib-spin7")
        serial = analyze_trace_sharded(trace, cfg, shards=4, workers=0)
        forked = analyze_trace_sharded(trace, cfg, shards=4, workers=2)
        assert forked.report.fingerprint() == serial.report.fingerprint()
        assert forked.workers == 2

    def test_forked_partial_trace(self):
        spec = chaos_spec(
            next(c for c in chaos_cases() if c.name == "drop-flag-store"),
            ToolConfig.helgrind_lib_spin(7),
        )
        trace = record_trace(
            spec.resolve().fresh_program(),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            max_blocks=MAX_BLOCKS,
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        assert trace.status != "ok"
        cfg = resolve_tool("helgrind-lib-spin7")
        forked = analyze_trace_sharded(trace, cfg, shards=4, workers=2)
        assert forked.report.partial
        assert forked.report.fingerprint() == analyze_trace(
            trace, cfg
        ).report.fingerprint()


class TestSessionSharding:
    def test_session_sharded_matches_unsharded(self):
        trace = record_trace(flag_handoff_program(), seed=2)
        cfg = "helgrind-lib-spin7"
        base = repro.run(config=cfg, trace=trace)
        sharded = repro.run(config=cfg, trace=trace, shards=2)
        assert sharded.report.fingerprint() == base.report.fingerprint()
        assert sharded.detector is None
        assert sharded.notes == ("sharded:2",)
        assert sharded.result.status == base.result.status

    def test_shards_require_a_trace(self):
        with pytest.raises(ValueError, match="trace"):
            repro.run(flag_handoff_program, shards=2)

    def test_shards_reject_framed_streams(self, tmp_path):
        trace = record_trace(flag_handoff_program(), seed=2)
        store = TraceStore(tmp_path)
        store.put("k", trace)
        with pytest.raises(ValueError, match="materialized"):
            repro.run(
                config="helgrind-lib-spin7", trace=store._path("k"), shards=2
            )
