"""Happens-before graph extraction from traces."""

import pytest

from repro.isa.program import SyncKind
from repro.trace import record_trace
from repro.trace.hbgraph import HbGraph, HbNode, build_hb_graph
from repro.workloads.dr_test.suite import build_suite

from tests.conftest import flag_handoff_program

SUITE = {w.name: w for w in build_suite()}


class TestAdhocEdges:
    def test_flag_handoff_has_adhoc_edge(self):
        trace = record_trace(flag_handoff_program(), seed=1)
        graph = build_hb_graph(trace, spin_k=7)
        adhoc = [e for e in graph.edges if e[2] == "adhoc"]
        assert adhoc, "the counterpart write edge must appear"
        labels = {n.label for n in graph.nodes}
        assert any(l.startswith("write FLAG") for l in labels)
        assert any(l.startswith("spin-read FLAG") for l in labels)

    def test_adhoc_edge_orders_producer_before_consumer(self):
        trace = record_trace(flag_handoff_program(), seed=1)
        graph = build_hb_graph(trace, spin_k=7)
        write = next(
            n.index for n in graph.nodes if n.label.startswith("write FLAG")
        )
        consumer_exits = [
            n.index
            for n in graph.nodes
            if n.label == "exit" and n.tid == 2  # consumer spawned second
        ]
        if consumer_exits:
            assert graph.ordered(write, consumer_exits[0])

    def test_spin_k_filters_wide_loops(self):
        wl = SUITE["adhoc7_handoff"]
        trace = record_trace(wl.build(), seed=wl.seed, max_blocks=8)
        wide = build_hb_graph(trace, spin_k=7)
        narrow = build_hb_graph(trace, spin_k=6)
        assert any(e[2] == "adhoc" for e in wide.edges)
        user_adhoc_narrow = [
            e
            for e in narrow.edges
            if e[2] == "adhoc"
        ]
        assert len(user_adhoc_narrow) < len(
            [e for e in wide.edges if e[2] == "adhoc"]
        )


class TestSyncEdges:
    def test_lock_chain_edges(self):
        wl = SUITE["locks_mutex_counter_t2"]
        trace = record_trace(wl.build(), seed=wl.seed)
        graph = build_hb_graph(trace)
        kinds = {e[2] for e in graph.edges}
        assert "sync" in kinds and "po" in kinds
        labels = [n.label for n in graph.nodes]
        assert any(l.startswith("lock") for l in labels)
        assert any(l.startswith("unlock") for l in labels)

    def test_join_edges_order_worker_exit(self):
        wl = SUITE["locks_mutex_counter_t2"]
        trace = record_trace(wl.build(), seed=wl.seed)
        graph = build_hb_graph(trace)
        exits = [n for n in graph.nodes if n.label == "exit" and n.tid != 0]
        joins = [n for n in graph.nodes if n.label.startswith("join")]
        assert exits and joins
        # every worker exit happens-before some join of main
        for x in exits:
            assert any(graph.ordered(x.index, j.index) for j in joins)

    def test_barrier_all_to_all(self):
        wl = SUITE["barrier_phase_t2"]
        trace = record_trace(wl.build(), seed=wl.seed)
        graph = build_hb_graph(trace)
        arrivals = [n for n in graph.nodes if n.label.startswith("barrier")]
        resumes = [n for n in graph.nodes if n.label.startswith("resume")]
        assert len(arrivals) == 2
        for r in resumes:
            for a in arrivals:
                if a.tid != r.tid:
                    assert graph.ordered(a.index, r.index)


class TestDotExport:
    def test_dot_output_well_formed(self):
        trace = record_trace(flag_handoff_program(), seed=1)
        graph = build_hb_graph(trace)
        dot = graph.to_dot("demo")
        assert dot.startswith("digraph hb {")
        assert dot.rstrip().endswith("}")
        assert "subgraph cluster_t0" in dot
        assert "color=red" in dot  # the adhoc edge styling

    def test_po_chains_are_forward(self):
        trace = record_trace(flag_handoff_program(), seed=1)
        graph = build_hb_graph(trace)
        for src, dst, kind in graph.edges:
            if kind == "po":
                assert src < dst
