"""Record-once-analyze-anywhere differential gate.

The tentpole guarantee: for any recorded execution, running any tool
preset over the stored trace (:func:`repro.trace.analyze_trace`) yields
a report whose *full fingerprint* is bit-identical to a live run of the
same (program, seed, faults) cell under that preset — across the whole
120-case suite, every named preset, and the chaos cases whose traces
truncate partially (deadlock / livelock / fault-killed threads).

Also pinned here: the no-spin wide-loop regression (the replay filter
must only apply under spin configurations), scheduler-spec recording,
``RunSpec.trace_mode`` sweep plumbing, and the ``repro.run(trace=...)``
session front door.
"""

import dataclasses

import pytest

import repro
from repro.detectors import ToolConfig
from repro.harness.chaos import chaos_spec
from repro.harness.parallel import RunSpec, prewarm_traces, run_sweep, sweep_specs
from repro.harness.registry import resolve_tool
from repro.harness.runner import run_workload
from repro.trace import (
    Trace,
    TraceStore,
    analyze_trace,
    analyze_trace_streaming,
    record_trace,
)
from repro.workloads.dr_test.faults import chaos_cases
from repro.workloads.dr_test.suite import build_suite

from tests.conftest import flag_handoff_program

SUITE = build_suite()
PRESET_NAMES = ToolConfig.presets()
PRESETS = [resolve_tool(name) for name in PRESET_NAMES]

#: instrumentation wide enough for every preset (the store convention)
MAX_BLOCKS = max([8, *(c.spin_max_blocks for c in PRESETS)])

_trace_memo = {}


def _recorded(wl):
    """One recording per suite case, shared across the preset params."""
    if wl.name not in _trace_memo:
        _trace_memo[wl.name] = record_trace(
            wl.build(), seed=wl.seed, max_steps=wl.max_steps, max_blocks=MAX_BLOCKS
        )
    return _trace_memo[wl.name]


class TestSuiteDifferential:
    def test_presets_share_one_instrumentation_depth(self):
        # The shared-recording convention relies on every preset using
        # the same inline depth; a new preset that changes it needs its
        # own recording tier, and this test is the tripwire.
        assert len({c.inline_depth for c in PRESETS}) == 1

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_replay_fingerprint_equals_live_across_the_suite(self, preset):
        cfg = resolve_tool(preset)
        mismatches = []
        for wl in SUITE:
            live = run_workload(wl, cfg, seed=wl.seed)
            replayed = analyze_trace(_recorded(wl), cfg)
            if replayed.report.fingerprint() != live.report.fingerprint():
                mismatches.append(wl.name)
        assert not mismatches, f"{preset}: replay diverged on {mismatches}"


class TestChaosDifferential:
    """Partial traces: fault-truncated runs must replay faithfully."""

    @pytest.mark.parametrize("case", [c.name for c in chaos_cases()])
    def test_chaos_replay_matches_live_for_every_preset(self, case):
        spec = chaos_spec(
            next(c for c in chaos_cases() if c.name == case),
            ToolConfig.helgrind_lib_spin(7),
        )
        wl = spec.resolve()
        trace = record_trace(
            wl.fresh_program(),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            max_blocks=MAX_BLOCKS,
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        mismatches = []
        for cfg in PRESETS:
            live = run_workload(
                wl,
                cfg,
                seed=spec.effective_seed(),
                max_steps=spec.effective_max_steps(),
                fault_plan=spec.fault_plan,
                livelock_bound=spec.livelock_bound,
            )
            replayed = analyze_trace(trace, cfg)
            assert replayed.report.partial == (trace.status != "ok")
            if replayed.report.fingerprint() != live.report.fingerprint():
                mismatches.append(cfg.name)
        assert not mismatches, f"{case}: replay diverged under {mismatches}"

    def test_chaos_suite_contains_partial_traces(self):
        """The gate above must actually exercise non-ok finalization."""
        statuses = set()
        for c in chaos_cases():
            spec = chaos_spec(c, ToolConfig.helgrind_lib_spin(7))
            trace = record_trace(
                spec.resolve().fresh_program(),
                seed=spec.effective_seed(),
                max_steps=spec.effective_max_steps(),
                fault_plan=spec.fault_plan,
                livelock_bound=spec.livelock_bound,
            )
            statuses.add(trace.status)
        assert statuses - {"ok"}, "no chaos case produced a partial trace"


@pytest.fixture(scope="module")
def suite_store(tmp_path_factory):
    """One store shared by the streaming params — each suite case is
    framed to disk once and re-opened per preset."""
    return TraceStore(tmp_path_factory.mktemp("stream-suite"))


def _streamed(store, wl):
    if not store.has(wl.name):
        store.put(wl.name, _recorded(wl))
    stream = store.open_stream(wl.name)
    assert stream is not None
    return stream


class TestStreamingDifferential:
    """The bounded-memory decoder is fingerprint-invisible.

    :func:`analyze_trace_streaming` must match :func:`analyze_trace`
    bit-for-bit on the full report fingerprint — across the whole
    120-case suite, every named preset, and the chaos cases whose
    recordings truncate partially — and since the in-memory path is
    already gated against live runs above, transitivity extends the
    guarantee to live execution.
    """

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_streaming_fingerprint_equals_in_memory_across_the_suite(
        self, preset, suite_store
    ):
        cfg = resolve_tool(preset)
        mismatches = []
        for wl in SUITE:
            inmem = analyze_trace(_recorded(wl), cfg)
            streamed = analyze_trace_streaming(_streamed(suite_store, wl), cfg)
            if streamed.report.fingerprint() != inmem.report.fingerprint():
                mismatches.append(wl.name)
        assert not mismatches, f"{preset}: streaming diverged on {mismatches}"

    @pytest.mark.parametrize("case", [c.name for c in chaos_cases()])
    def test_chaos_streaming_matches_in_memory_for_every_preset(
        self, case, tmp_path
    ):
        spec = chaos_spec(
            next(c for c in chaos_cases() if c.name == case),
            ToolConfig.helgrind_lib_spin(7),
        )
        trace = record_trace(
            spec.resolve().fresh_program(),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            max_blocks=MAX_BLOCKS,
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        store = TraceStore(tmp_path)
        store.put("c", trace)
        mismatches = []
        for cfg in PRESETS:
            inmem = analyze_trace(trace, cfg)
            streamed = analyze_trace_streaming(store.open_stream("c"), cfg)
            # partial (fault-truncated) recordings must finalize
            # identically, and the synthesized machine result must agree
            assert streamed.report.partial == (trace.status != "ok")
            assert streamed.result.status == trace.status
            if streamed.report.fingerprint() != inmem.report.fingerprint():
                mismatches.append(cfg.name)
        assert not mismatches, f"{case}: streaming diverged under {mismatches}"

    def test_chunk_size_is_invisible(self, suite_store):
        # Chunk boundaries must not leak into the three-way seq merge.
        wl = next(w for w in SUITE if w.name == "adhoc7_handoff")
        cfg = resolve_tool("helgrind-lib-spin7")
        prints = {
            chunk: analyze_trace_streaming(
                _streamed(suite_store, wl), cfg, chunk_events=chunk
            ).report.fingerprint()
            for chunk in (1, 3, 2048)
        }
        assert len(set(prints.values())) == 1

    def test_streaming_carries_a_provenance_note(self, suite_store):
        wl = SUITE[0]
        streamed = analyze_trace_streaming(
            _streamed(suite_store, wl), resolve_tool("helgrind-lib-spin7")
        )
        assert streamed.notes == ("streaming-decode",)


class TestNoSpinWideLoopRegression:
    """The replay-side loop filter is a spin(k) feature: a preset with
    ``spin=False`` must see every recorded event regardless of its
    (latent) ``spin_max_blocks`` value.

    Regression: ``replay_trace`` used to apply the wide-loop filter from
    ``spin_max_blocks`` unconditionally, silently dropping the marked
    events of wider loops — events a live no-spin run delivers as plain
    reads — and diverging from the live fingerprint.
    """

    def _case(self):
        return next(wl for wl in SUITE if wl.name == "adhoc7_handoff")

    def test_no_spin_preset_with_narrow_latent_window(self):
        wl = self._case()
        trace = record_trace(wl.build(), seed=wl.seed, max_blocks=8)
        # the recording must contain a loop wider than the latent window
        assert any(size > 3 for size in trace.loop_sizes.values())
        cfg = dataclasses.replace(resolve_tool("helgrind-lib"), spin_max_blocks=3)
        assert not cfg.spin
        live = run_workload(wl, cfg, seed=wl.seed)
        replayed = analyze_trace(trace, cfg)
        assert replayed.report.fingerprint() == live.report.fingerprint()

    def test_spin_preset_still_filters(self):
        wl = self._case()
        trace = record_trace(wl.build(), seed=wl.seed, max_blocks=8)
        narrow = analyze_trace(trace, ToolConfig.helgrind_lib_spin(6))
        wide = analyze_trace(trace, ToolConfig.helgrind_lib_spin(7))
        assert narrow.report.racy_contexts > 0
        assert wide.report.racy_contexts == 0


class TestSchedulerRecording:
    def test_round_robin_replay_matches_live(self):
        program = flag_handoff_program()
        cfg = ToolConfig.helgrind_lib_spin(7)
        live = repro.run(flag_handoff_program, cfg, seed=2, scheduler="round-robin")
        trace = record_trace(program, seed=2, scheduler="round-robin")
        assert trace.scheduler == "round-robin"
        replayed = analyze_trace(trace, cfg)
        assert replayed.report.fingerprint() == live.report.fingerprint()

    def test_adversarial_recording_is_deterministic(self):
        a = record_trace(flag_handoff_program(), seed=5, scheduler="adversarial")
        b = record_trace(flag_handoff_program(), seed=5, scheduler="adversarial")
        assert a.scheduler == b.scheduler == "adversarial"
        assert a.events == b.events

    def test_scheduler_changes_the_interleaving_key_not_just_metadata(self):
        rnd = record_trace(flag_handoff_program(), seed=2)
        rr = record_trace(flag_handoff_program(), seed=2, scheduler="round-robin")
        assert rnd.scheduler == "random"
        assert rnd.events != rr.events

    def test_scheduler_survives_json(self):
        trace = record_trace(flag_handoff_program(), seed=2, scheduler="round-robin")
        assert Trace.from_json(trace.to_json()).scheduler == "round-robin"

    def test_pre_scheduler_json_defaults_to_random(self):
        import json

        trace = record_trace(flag_handoff_program(), seed=2)
        data = json.loads(trace.to_json())
        del data["scheduler"]
        assert Trace.from_json(json.dumps(data)).scheduler == "random"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            record_trace(flag_handoff_program(), scheduler="fifo")


TOOLS3 = ["helgrind-lib", "helgrind-lib-spin7", "drd"]


class TestSweepTraceModes:
    def _specs(self, mode):
        specs = sweep_specs(["adhoc7_handoff"], TOOLS3, seeds=[1])
        return [dataclasses.replace(s, trace_mode=mode) for s in specs]

    def test_replay_sweep_matches_live_sweep(self, tmp_path):
        live = run_sweep(self._specs("live"), workers=0)
        replay = run_sweep(self._specs("replay"), workers=0, trace_dir=tmp_path)
        assert len(replay.outcomes) == len(live.outcomes) == 3
        by_key = {
            (o.workload.name, o.config.name, o.seed): o for o in live.outcomes
        }
        for o in replay.outcomes:
            assert o.trace_mode == "replay"
            twin = by_key[(o.workload.name, o.config.name, o.seed)]
            assert twin.trace_mode == "live"
            assert o.report.fingerprint() == twin.report.fingerprint()
            assert o.result.status == twin.result.status
            assert o.steps == twin.steps

    def test_one_recording_serves_all_configs(self, tmp_path):
        run_sweep(self._specs("replay"), workers=0, trace_dir=tmp_path)
        assert len(TraceStore(tmp_path)) == 1

    def test_prewarm_record_mode_rerecords(self, tmp_path):
        replay_specs = self._specs("replay")
        assert prewarm_traces(replay_specs, tmp_path) == 1
        assert prewarm_traces(replay_specs, tmp_path) == 0  # store hit
        record_specs = self._specs("record")
        assert prewarm_traces(record_specs, tmp_path) == 1  # forced
        assert prewarm_traces(record_specs, tmp_path) == 1  # forced again

    def test_trace_dir_defaults_under_the_cache(self, tmp_path):
        from repro.harness.parallel import ResultCache

        cache = ResultCache(tmp_path / "cache")
        run_sweep(self._specs("replay"), workers=0, cache=cache)
        assert len(TraceStore(tmp_path / "cache" / "traces")) == 1

    def test_non_live_without_store_location_rejected(self):
        with pytest.raises(ValueError, match="trace_dir"):
            run_sweep(self._specs("replay"), workers=0)

    def test_unknown_trace_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="trace_mode"):
            run_sweep(self._specs("offline"), workers=0, trace_dir=tmp_path)

    def test_pool_replay_sweep_matches_serial(self, tmp_path):
        serial = run_sweep(self._specs("replay"), workers=0, trace_dir=tmp_path)
        pooled = run_sweep(
            self._specs("replay"), workers=2, trace_dir=tmp_path
        )
        assert len(TraceStore(tmp_path)) == 1  # prewarmed once, shared
        by_key = {
            (o.workload.name, o.config.name): o.report.fingerprint()
            for o in serial.outcomes
        }
        for o in pooled.outcomes:
            assert o.report.fingerprint() == by_key[(o.workload.name, o.config.name)]


class TestSessionTraceRuns:
    def test_session_replay_matches_live(self):
        cfg = "helgrind-lib-spin7"
        live = repro.run(flag_handoff_program, cfg, seed=2)
        trace = record_trace(flag_handoff_program(), seed=2)
        offline = repro.run(config=cfg, trace=trace)
        assert offline.report.fingerprint() == live.report.fingerprint()
        assert offline.program is None and offline.machine is None
        assert offline.trace is trace
        assert offline.seed == 2
        assert offline.result.ok and offline.result.status == "ok"
        assert "flag_handoff" in str(offline)

    def test_session_accepts_a_trace_file(self, tmp_path):
        trace = record_trace(flag_handoff_program(), seed=2)
        path = tmp_path / "t.json"
        path.write_text(trace.to_json())
        offline = repro.run(config="helgrind-lib-spin7", trace=path)
        assert (
            offline.report.fingerprint()
            == repro.run(config="helgrind-lib-spin7", trace=trace).report.fingerprint()
        )

    def test_session_streams_a_framed_trace_file(self, tmp_path):
        trace = record_trace(flag_handoff_program(), seed=2)
        store = TraceStore(tmp_path)
        store.put("k", trace)
        offline = repro.run(
            config="helgrind-lib-spin7", trace=store._path("k")
        )
        inmem = repro.run(config="helgrind-lib-spin7", trace=trace)
        assert offline.report.fingerprint() == inmem.report.fingerprint()
        assert offline.notes == ("streaming-decode",)
        assert offline.trace is None  # never materialized
        assert offline.seed == 2
        assert inmem.notes == ()  # the in-memory path is unchanged

    def test_session_synthesizes_partial_status(self):
        case = next(c for c in chaos_cases() if c.name == "drop-flag-store")
        spec = chaos_spec(case, ToolConfig.helgrind_lib_spin(7))
        trace = record_trace(
            spec.resolve().fresh_program(),
            seed=spec.effective_seed(),
            max_steps=spec.effective_max_steps(),
            fault_plan=spec.fault_plan,
            livelock_bound=spec.livelock_bound,
        )
        offline = repro.run(config="helgrind-lib-spin7", trace=trace)
        assert offline.result.status == trace.status == "livelock"
        assert not offline.ok
        assert offline.report.partial

    def test_trace_and_program_are_mutually_exclusive(self):
        trace = record_trace(flag_handoff_program(), seed=2)
        with pytest.raises(ValueError, match="not both"):
            repro.run(flag_handoff_program, trace=trace)

    @pytest.mark.parametrize(
        "kw",
        [
            {"faults": object()},
            {"scheduler": "round-robin"},
            {"max_steps": 10},
            {"livelock_bound": 5},
            {"symbolize": str},
        ],
    )
    def test_live_only_knobs_rejected_for_trace_sessions(self, kw):
        trace = record_trace(flag_handoff_program(), seed=2)
        with pytest.raises(ValueError, match="live execution"):
            repro.run(trace=trace, **kw)

    def test_neither_program_nor_trace_rejected(self):
        with pytest.raises(ValueError, match="program/workload or a trace"):
            repro.run()
