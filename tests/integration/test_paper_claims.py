"""Integration tests pinning the paper's headline claims.

Each test corresponds to a claim in the slides; the benchmark harness
regenerates the full tables, these tests assert the *shape* holds.
They run the full 120-case suite, so they are the slowest tests here
(a few seconds per configuration).
"""

import pytest

from repro.detectors import ToolConfig
from repro.harness.metrics import score_suite
from repro.workloads.dr_test.suite import build_suite

SUITE = build_suite()


@pytest.fixture(scope="module")
def scores():
    out = {}
    for cfg in ToolConfig.paper_tools(7):
        score, _ = score_suite(SUITE, cfg)
        out[cfg.name] = score
    return out


class TestHeadlineClaims:
    def test_spin_detection_reduces_false_alarms_dramatically(self, scores):
        """Slide 24: 24 false positives removed (32 -> 8)."""
        lib = scores["Helgrind+ lib"].false_alarms
        spin = scores["Helgrind+ lib+spin(7)"].false_alarms
        assert spin < lib / 3
        assert lib - spin >= 20

    def test_spin_detection_removes_a_false_negative(self, scores):
        """Slide 24: missed races drop by one (8 -> 7)."""
        lib = scores["Helgrind+ lib"].missed_races
        spin = scores["Helgrind+ lib+spin(7)"].missed_races
        assert spin == lib - 1

    def test_universal_detector_close_to_lib_spin(self, scores):
        """Slide 24: removing all library knowledge costs only a little."""
        spin = scores["Helgrind+ lib+spin(7)"]
        nolib = scores["Helgrind+ nolib+spin(7)"]
        assert nolib.false_alarms - spin.false_alarms <= 2
        assert nolib.correct >= spin.correct - 8

    def test_lib_spin_dominates_every_tool(self, scores):
        best = scores["Helgrind+ lib+spin(7)"]
        for name, score in scores.items():
            assert best.correct >= score.correct, name

    def test_drd_misses_far_more_races_than_hybrid(self, scores):
        """Slide 24: DRD 20 missed vs Helgrind+ 8."""
        assert scores["DRD"].missed_races >= 2 * scores["Helgrind+ lib"].missed_races

    def test_suite_magnitudes_near_paper(self, scores):
        """Within-2x sanity band around the paper's absolute numbers."""
        lib = scores["Helgrind+ lib"]
        spin = scores["Helgrind+ lib+spin(7)"]
        assert 20 <= lib.false_alarms <= 45  # paper: 32
        assert 5 <= lib.missed_races <= 12  # paper: 8
        assert spin.false_alarms == 8  # paper: 8
        assert 90 <= spin.correct <= 110  # paper: 105


class TestThresholdSaturation:
    """Slide 25: spin(3) and spin(6) are much worse; spin(7) == spin(8)."""

    @pytest.fixture(scope="class")
    def by_k(self):
        return {
            k: score_suite(SUITE, ToolConfig.helgrind_lib_spin(k))[0]
            for k in (3, 6, 7, 8)
        }

    def test_small_windows_leave_many_false_alarms(self, by_k):
        assert by_k[3].false_alarms > 2 * by_k[7].false_alarms
        assert by_k[6].false_alarms > 2 * by_k[7].false_alarms

    def test_seven_saturates(self, by_k):
        assert by_k[7].false_alarms == by_k[8].false_alarms
        assert by_k[7].correct == by_k[8].correct

    def test_monotone_improvement(self, by_k):
        assert by_k[3].correct <= by_k[6].correct <= by_k[7].correct
