"""The event stream: contents, ordering, interception metadata."""

from repro.analysis import instrument_program
from repro.isa.builder import ProgramBuilder
from repro.isa.program import SyncKind
from repro.runtime import MUTEX_SIZE, build_library
from repro.vm import (
    LibEnter,
    LibExit,
    Machine,
    MarkedCondRead,
    MarkedLoopEnter,
    MarkedLoopExit,
    MemRead,
    MemWrite,
    RandomScheduler,
    ThreadJoinEvent,
    ThreadSpawnEvent,
)

from tests.conftest import flag_handoff_program


def _collect(program, seed=1, instrumentation=None):
    events = []
    machine = Machine(
        program,
        scheduler=RandomScheduler(seed),
        listener=events.append,
        instrumentation=instrumentation,
    )
    result = machine.run()
    assert result.ok
    return events


class TestMemoryEvents:
    def test_reads_and_writes_carry_values(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1, init=(5,))
        mn = pb.function("main")
        a = mn.addr("G")
        mn.store(a, mn.add(mn.load(a), 1))
        mn.halt()
        events = _collect(pb.build())
        reads = [e for e in events if isinstance(e, MemRead)]
        writes = [e for e in events if isinstance(e, MemWrite)]
        assert reads[0].value == 5
        assert writes[0].value == 6
        assert reads[0].addr == writes[0].addr

    def test_atomic_flag_set(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1)
        mn = pb.function("main")
        a = mn.addr("G")
        mn.atomic_add(a, 2)
        mn.halt()
        events = _collect(pb.build())
        mem = [e for e in events if isinstance(e, (MemRead, MemWrite))]
        assert all(e.atomic for e in mem)
        assert isinstance(mem[0], MemRead) and isinstance(mem[1], MemWrite)

    def test_failed_cas_emits_read_only(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1, init=(9,))
        mn = pb.function("main")
        a = mn.addr("G")
        mn.atomic_cas(a, 0, 1)  # fails: G == 9
        mn.halt()
        events = _collect(pb.build())
        assert any(isinstance(e, MemRead) for e in events)
        assert not any(isinstance(e, MemWrite) for e in events)


class TestThreadEvents:
    def test_spawn_and_join_events(self):
        pb = ProgramBuilder("t")
        w = pb.function("worker")
        w.ret()
        mn = pb.function("main")
        t = mn.spawn("worker", [])
        mn.join(t)
        mn.halt()
        events = _collect(pb.build())
        spawns = [e for e in events if isinstance(e, ThreadSpawnEvent)]
        joins = [e for e in events if isinstance(e, ThreadJoinEvent)]
        assert spawns[0].tid == 0 and spawns[0].child == 1
        assert joins[0].tid == 0 and joins[0].joined == 1


class TestLibraryEvents:
    def test_mutex_lock_emits_enter_exit(self):
        pb = ProgramBuilder("t")
        pb.global_("M", MUTEX_SIZE)
        mn = pb.function("main")
        m = mn.addr("M")
        mn.call("mutex_lock", [m])
        mn.call("mutex_unlock", [m])
        mn.halt()
        pb.link(build_library())
        events = _collect(pb.build())
        enters = [e for e in events if isinstance(e, LibEnter)]
        exits = [e for e in events if isinstance(e, LibExit)]
        assert [e.kind for e in enters] == [SyncKind.LOCK_ACQUIRE, SyncKind.LOCK_RELEASE]
        assert [e.kind for e in exits] == [SyncKind.LOCK_ACQUIRE, SyncKind.LOCK_RELEASE]
        assert enters[0].obj_addr == exits[0].obj_addr

    def test_library_internal_memory_flagged(self):
        pb = ProgramBuilder("t")
        pb.global_("M", MUTEX_SIZE)
        mn = pb.function("main")
        m = mn.addr("M")
        mn.call("mutex_lock", [m])
        mn.call("mutex_unlock", [m])
        mn.halt()
        pb.link(build_library())
        events = _collect(pb.build())
        mem = [e for e in events if isinstance(e, (MemRead, MemWrite))]
        assert mem, "mutex internals must produce memory traffic"
        assert all(e.in_library for e in mem)

    def test_nested_annotated_call_flagged_in_library(self):
        """cv_wait calls mutex_unlock internally; the inner annotated
        events must carry in_library=True so the interceptor skips them."""
        from repro.runtime import CONDVAR_SIZE

        pb = ProgramBuilder("t")
        pb.global_("M", MUTEX_SIZE)
        pb.global_("CV", CONDVAR_SIZE)
        sig = pb.function("signaler")
        sig.nop(30)
        cv = sig.addr("CV")
        sig.call("cv_signal", [cv])
        sig.ret()
        mn = pb.function("main")
        t = mn.spawn("signaler", [])
        m = mn.addr("M")
        cv = mn.addr("CV")
        mn.call("mutex_lock", [m])
        mn.call("cv_wait", [cv, m])
        mn.call("mutex_unlock", [m])
        mn.join(t)
        mn.halt()
        pb.link(build_library())
        events = _collect(pb.build())
        inner = [
            e
            for e in events
            if isinstance(e, LibEnter)
            and e.kind in (SyncKind.LOCK_ACQUIRE, SyncKind.LOCK_RELEASE)
            and e.in_library
        ]
        assert inner, "cv_wait's internal mutex ops must be marked nested"
        wait_exit = [
            e for e in events if isinstance(e, LibExit) and e.kind is SyncKind.CV_WAIT
        ]
        assert wait_exit and wait_exit[0].obj2_addr is not None


class TestMarkedEvents:
    def test_marked_events_for_spin_loop(self):
        prog = flag_handoff_program()
        imap = instrument_program(prog, max_blocks=7)
        events = _collect(prog, instrumentation=imap)
        assert any(isinstance(e, MarkedLoopEnter) for e in events)
        assert any(isinstance(e, MarkedLoopExit) for e in events)
        assert any(isinstance(e, MarkedCondRead) for e in events)

    def test_cond_read_precedes_mem_read(self):
        prog = flag_handoff_program()
        imap = instrument_program(prog, max_blocks=7)
        events = _collect(prog, instrumentation=imap)
        for i, e in enumerate(events):
            if isinstance(e, MarkedCondRead) and not e.in_library:
                nxt = events[i + 1]
                assert isinstance(nxt, MemRead)
                assert nxt.addr == e.addr and nxt.value == e.value
                break
        else:
            raise AssertionError("no user-level MarkedCondRead observed")

    def test_no_marked_events_without_instrumentation(self):
        prog = flag_handoff_program()
        events = _collect(prog)
        assert not any(
            isinstance(e, (MarkedLoopEnter, MarkedLoopExit, MarkedCondRead))
            for e in events
        )

    def test_steps_monotonic(self):
        prog = flag_handoff_program()
        events = _collect(prog)
        steps = [e.step for e in events]
        assert steps == sorted(steps)
