"""Interpreter basics: arithmetic, control flow, calls, errors."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.vm import Machine, RoundRobinScheduler
from repro.vm.machine import MachineError

from tests.conftest import run_program


def _run_main(build_body) -> list:
    """Build main with build_body(fb), run, return printed values."""
    pb = ProgramBuilder("t")
    mn = pb.function("main")
    build_body(pb, mn)
    mn.halt()
    _, result = run_program(pb.build())
    return [v for (_tid, v) in result.outputs]


class TestArithmetic:
    def test_add_sub_mul(self):
        def body(pb, mn):
            mn.print_(mn.add(2, 3))
            mn.print_(mn.sub(2, 3))
            mn.print_(mn.mul(4, 5))

        assert _run_main(body) == [5, -1, 20]

    def test_div_truncates_toward_zero(self):
        def body(pb, mn):
            mn.print_(mn.div(7, 2))
            mn.print_(mn.div(-7, 2))

        assert _run_main(body) == [3, -3]

    def test_mod_sign_follows_c_semantics(self):
        def body(pb, mn):
            mn.print_(mn.mod(7, 3))
            mn.print_(mn.mod(-7, 3))

        assert _run_main(body) == [1, -1]

    def test_div_by_zero_raises(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        mn.print_(mn.div(1, 0))
        mn.halt()
        with pytest.raises(MachineError, match="division"):
            run_program(pb.build())

    def test_bitwise(self):
        def body(pb, mn):
            mn.print_(mn.and_(6, 3))
            mn.print_(mn.or_(6, 3))
            mn.print_(mn.xor(6, 3))

        assert _run_main(body) == [2, 7, 5]

    def test_comparisons_produce_0_or_1(self):
        def body(pb, mn):
            mn.print_(mn.lt(1, 2))
            mn.print_(mn.lt(2, 1))
            mn.print_(mn.eq(2, 2))
            mn.print_(mn.not_(mn.const(0)))
            mn.print_(mn.not_(mn.const(7)))

        assert _run_main(body) == [1, 0, 1, 1, 0]


class TestControlFlow:
    def test_branch_taken_and_not(self):
        def body(pb, mn):
            c = mn.eq(1, 1)
            mn.br(c, "yes", "no")
            mn.label("yes")
            mn.print_(mn.const(10))
            mn.jmp("end")
            mn.label("no")
            mn.print_(mn.const(20))
            mn.jmp("end")
            mn.label("end")

        assert _run_main(body) == [10]

    def test_loop_counts(self):
        def body(pb, mn):
            i = mn.reg("i")
            mn.emit(ins.Const(i, 0))
            mn.jmp("loop")
            mn.label("loop")
            mn.emit(ins.Mov(i, mn.add(i, 1)))
            c = mn.lt(i, mn.const(5))
            mn.br(c, "loop", "done")
            mn.label("done")
            mn.print_(i)

        assert _run_main(body) == [5]


class TestCalls:
    def test_call_returns_value(self):
        pb = ProgramBuilder("t")
        double = pb.function("double", params=("x",))
        double.ret(double.mul("x", 2))
        mn = pb.function("main")
        r = mn.call("double", [21], want_result=True)
        mn.print_(r)
        mn.halt()
        _, result = run_program(pb.build())
        assert result.outputs == [(0, 42)]

    def test_recursion(self):
        pb = ProgramBuilder("t")
        fact = pb.function("fact", params=("n",))
        is_base = fact.le("n", 1)
        fact.br(is_base, "base", "rec")
        fact.label("base")
        fact.ret(1)
        fact.label("rec")
        sub = fact.call("fact", [fact.sub("n", 1)], want_result=True)
        fact.ret(fact.mul("n", sub))
        mn = pb.function("main")
        mn.print_(mn.call("fact", [6], want_result=True))
        mn.halt()
        _, result = run_program(pb.build())
        assert result.outputs == [(0, 720)]

    def test_icall_through_function_pointer(self):
        pb = ProgramBuilder("t")
        inc = pb.function("inc", params=("x",))
        inc.ret(inc.add("x", 1))
        mn = pb.function("main")
        fp = mn.func_addr("inc")
        mn.print_(mn.icall(fp, [9], want_result=True))
        mn.halt()
        _, result = run_program(pb.build())
        assert result.outputs == [(0, 10)]

    def test_icall_bad_address_raises(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        bogus = mn.const(12345)
        mn.icall(bogus, [])
        mn.halt()
        with pytest.raises(MachineError, match="non-function"):
            run_program(pb.build())

    def test_void_return_into_dst_raises(self):
        pb = ProgramBuilder("t")
        v = pb.function("v")
        v.ret()
        mn = pb.function("main")
        mn.call("v", [], want_result=True)
        mn.halt()
        with pytest.raises(MachineError, match="returned no value"):
            run_program(pb.build())


class TestErrors:
    def test_undefined_register_read(self):
        from repro.isa.program import BasicBlock, Function, Program

        p = Program()
        f = Function("main")
        f.add_block(BasicBlock("entry", [ins.Print("ghost"), ins.Halt()]))
        p.add_function(f)
        with pytest.raises(MachineError, match="undefined register"):
            Machine(p).run()


class TestHeapAndGlobals:
    def test_alloc_load_store(self):
        def body(pb, mn):
            base = mn.alloc(3)
            mn.store(base, 7, offset=2)
            mn.print_(mn.load(base, offset=2))

        assert _run_main(body) == [7]

    def test_global_init_visible(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 2, init=(11, 22))
        mn = pb.function("main")
        mn.print_(mn.load_global("G", offset=1))
        mn.halt()
        _, result = run_program(pb.build())
        assert result.outputs == [(0, 22)]

    def test_final_memory_snapshot(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1)
        mn = pb.function("main")
        mn.store_global("G", 99)
        mn.halt()
        machine, result = run_program(pb.build())
        assert result.final_memory[machine.memory.global_base("G")] == 99
