"""Differential oracle: pre-decoding must not change a single run.

The threaded-code interpreter (:mod:`repro.vm.decode`) is a *pure*
dispatch optimization — every (workload, tool, seed) triple must make
the same scheduler decisions, execute the same number of steps, deliver
the same events, and produce a byte-identical
:class:`~repro.detectors.reports.Report` with ``predecoded`` on or off.
These tests sweep the whole 120-case dr_test suite and the 8-case chaos
suite for lib/nolib interception crossed with the spin feature on/off —
the same grid the pipeline differential uses.
"""

from dataclasses import replace

import pytest

from repro.detectors import ToolConfig
from repro.harness.registry import resolve_workload
from repro.harness.runner import run_workload
from repro.workloads import build_suite
from repro.workloads.dr_test.faults import chaos_cases

CONFIGS = (
    ToolConfig.helgrind_lib(),
    ToolConfig.helgrind_lib_spin(7),
    replace(ToolConfig.helgrind_nolib_spin(7), spin=False, name="Helgrind+ nolib"),
    ToolConfig.helgrind_nolib_spin(7),
)


def _compare(name, config, decoded, legacy, mismatches):
    """Execution surface + report must be identical between interpreters."""
    problems = []
    if decoded.result.status != legacy.result.status:
        problems.append(
            f"status {decoded.result.status!r} != {legacy.result.status!r}"
        )
    if decoded.steps != legacy.steps:
        problems.append(f"steps {decoded.steps} != {legacy.steps}")
    if decoded.events != legacy.events:
        problems.append(f"events {decoded.events} != {legacy.events}")
    if decoded.report.fingerprint() != legacy.report.fingerprint():
        problems.append(
            f"report\n  decoded: {decoded.report.fingerprint()}"
            f"\n  legacy:  {legacy.report.fingerprint()}"
        )
    if problems:
        mismatches.append(f"{name} under {config.name}: " + "; ".join(problems))


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_suite_runs_identical(config):
    mismatches = []
    for wl in build_suite():
        decoded = run_workload(wl, replace(config, predecoded=True))
        legacy = run_workload(wl, replace(config, predecoded=False))
        _compare(wl.name, config, decoded, legacy, mismatches)
    assert not mismatches, "\n".join(mismatches)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_chaos_runs_identical(config):
    """Fault-injected runs (dropped stores, stuck threads, watchdog
    kills mid-loop) must also be interpreter-invariant."""
    mismatches = []
    for case in chaos_cases():
        wl = resolve_workload(case.workload)
        runs = {}
        for label, predecoded in (("decoded", True), ("legacy", False)):
            runs[label] = run_workload(
                wl,
                replace(config, predecoded=predecoded),
                seed=case.seed,
                fault_plan=case.plan,
                livelock_bound=case.livelock_bound,
            )
        _compare(case.name, config, runs["decoded"], runs["legacy"], mismatches)
    assert not mismatches, "\n".join(mismatches)


def test_decode_cost_not_charged_to_duration():
    """decode_s is reported on the outcome, separate from duration_s."""
    wl = build_suite()[0]
    decoded = run_workload(wl, ToolConfig.helgrind_lib_spin(7))
    assert decoded.decode_s >= 0.0
    legacy = run_workload(
        wl, replace(ToolConfig.helgrind_lib_spin(7), predecoded=False)
    )
    assert legacy.decode_s == 0.0
    # total_s deliberately excludes the amortized one-time decode.
    assert decoded.total_s == decoded.duration_s + decoded.instrument_s
