"""Threading semantics: spawn/join, deadlock, timeout, racy interleaving."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler

from tests.conftest import run_program


def _racy_counter(iters: int = 40):
    pb = ProgramBuilder("racy")
    pb.global_("C", 1)
    w = pb.function("worker", params=("n",))
    i = w.reg("i")
    w.emit(ins.Const(i, 0))
    w.jmp("loop")
    w.label("loop")
    a = w.addr("C")
    w.store(a, w.add(w.load(a), 1))
    w.emit(ins.Mov(i, w.add(i, 1)))
    w.br(w.lt(i, "n"), "loop", "done")
    w.label("done")
    w.ret()
    mn = pb.function("main")
    n = mn.const(iters)
    t1 = mn.spawn("worker", [n])
    t2 = mn.spawn("worker", [n])
    mn.join(t1)
    mn.join(t2)
    mn.print_(mn.load_global("C"))
    mn.halt()
    return pb.build()


class TestSpawnJoin:
    def test_join_waits_for_child(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1)
        w = pb.function("worker")
        w.nop(20)
        w.store_global("G", 1)
        w.ret()
        mn = pb.function("main")
        t = mn.spawn("worker", [])
        mn.join(t)
        mn.print_(mn.load_global("G"))
        mn.halt()
        for seed in range(5):
            _, result = run_program(pb.build(), seed=seed)
            assert result.outputs == [(0, 1)]

    def test_thread_results_recorded(self):
        pb = ProgramBuilder("t")
        w = pb.function("worker", params=("x",))
        w.ret(w.mul("x", 10))
        mn = pb.function("main")
        t = mn.spawn("worker", [7])
        mn.join(t)
        mn.halt()
        _, result = run_program(pb.build())
        assert result.thread_results[1] == 70

    def test_spawn_passes_arguments(self):
        pb = ProgramBuilder("t")
        w = pb.function("worker", params=("a", "b"))
        w.print_(w.add("a", "b"))
        w.ret()
        mn = pb.function("main")
        t = mn.spawn("worker", [3, 4])
        mn.join(t)
        mn.halt()
        _, result = run_program(pb.build())
        assert (1, 7) in result.outputs

    def test_many_threads(self):
        pb = ProgramBuilder("t")
        pb.global_("SLOTS", 16)
        w = pb.function("worker", params=("idx",))
        base = w.addr("SLOTS")
        w.store(w.add(base, "idx"), "idx")
        w.ret()
        mn = pb.function("main")
        tids = [mn.spawn("worker", [mn.const(i)]) for i in range(16)]
        for t in tids:
            mn.join(t)
        mn.halt()
        machine, result = run_program(pb.build())
        base = machine.memory.global_base("SLOTS")
        assert [result.final_memory[base + i] for i in range(16)] == list(range(16))


class TestRaceVisibility:
    def test_racy_counter_loses_updates_under_some_seed(self):
        """The substrate must actually exhibit races: over several seeds,
        at least one run of an unsynchronized counter loses an update."""
        outcomes = set()
        for seed in range(8):
            _, result = run_program(_racy_counter(), seed=seed)
            outcomes.add(result.outputs[0][1])
        assert any(v < 80 for v in outcomes), outcomes

    def test_round_robin_is_deterministic(self):
        vals = set()
        for _ in range(3):
            prog = _racy_counter()
            machine = Machine(prog, scheduler=RoundRobinScheduler())
            result = machine.run()
            vals.add(result.outputs[0][1])
        assert len(vals) == 1

    def test_same_seed_same_interleaving(self):
        a = Machine(_racy_counter(), scheduler=RandomScheduler(3)).run()
        b = Machine(_racy_counter(), scheduler=RandomScheduler(3)).run()
        assert a.outputs == b.outputs
        assert a.steps == b.steps


class TestTermination:
    def test_deadlock_detected(self):
        pb = ProgramBuilder("t")
        w = pb.function("worker")
        w.ret()
        mn = pb.function("main")
        t = mn.spawn("worker", [])
        mn.join(t)
        # join a thread that never exits: main joins itself -> deadlock
        self_tid = mn.const(0)
        mn.emit(ins.Join(self_tid))
        mn.halt()
        _, result = run_program(pb.build())
        assert result.deadlocked
        assert not result.ok

    def test_step_budget_timeout(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        mn.jmp("spin")
        mn.label("spin")
        mn.jmp("spin")
        prog = pb.build()
        machine = Machine(prog, max_steps=500)
        result = machine.run()
        assert result.timed_out
        assert machine.step_count == 500

    def test_halt_stops_other_threads(self):
        pb = ProgramBuilder("t")
        w = pb.function("worker")
        w.jmp("spin")
        w.label("spin")
        w.yield_()
        w.jmp("spin")
        mn = pb.function("main")
        mn.spawn("worker", [])
        mn.nop(5)
        mn.halt()
        _, result = run_program(pb.build(), max_steps=100_000)
        assert not result.timed_out

    def test_program_without_halt_ends_when_all_exit(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        mn.print_(mn.const(1))
        mn.ret()
        _, result = run_program(pb.build())
        assert result.ok and result.outputs == [(0, 1)]
