"""Decode/instrument cache correctness: keying, sharing, invalidation.

The decode cache is content-keyed — program fingerprint, marker-table
digest, watchdog arming — so entries are shared exactly when the decoded
closures would be identical, and never across configurations that bake
different marked-load behavior into the handlers.
"""

import dataclasses

import pytest

from repro.analysis import (
    clear_instrument_cache,
    instrument_cache_info,
    instrument_program_cached,
)
from repro.detectors import ToolConfig
from repro.harness.parallel import (
    CACHE_SCHEMA,
    ResultCache,
    RunSpec,
    prewarm_static,
    run_sweep,
    sweep_specs,
)
from repro.harness.registry import (
    program_fingerprint,
    register_workload,
    resolve_workload,
    unregister_workload,
)
from repro.harness.workload import Workload
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Function, GlobalVar
from repro.vm.decode import (
    clear_decode_cache,
    decode_cache_info,
    decode_key,
    get_decoded_program,
)


def _spin_program(name="p"):
    """A program with a spin loop, so the marker tables are non-empty."""
    pb = ProgramBuilder(name)
    pb.global_("flag", 1, [0])
    mn = pb.function("main")
    mn.jmp("spin")
    mn.label("spin")
    v = mn.load_global("flag")
    c = mn.eq(v, 0)
    mn.br(c, "spin", "done")
    mn.label("done")
    mn.halt()
    return pb.build()


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_decode_cache()
    clear_instrument_cache()
    yield
    clear_decode_cache()
    clear_instrument_cache()


class TestDecodeKeying:
    def test_imap_changes_key(self):
        p = _spin_program()
        imap = instrument_program_cached(p)
        assert decode_key(p, None, False) != decode_key(p, imap, False)

    def test_watchdog_arming_changes_key(self):
        p = _spin_program()
        imap = instrument_program_cached(p)
        assert decode_key(p, imap, False) != decode_key(p, imap, True)

    def test_spin_window_changes_key_via_map_content(self):
        p = _spin_program()
        wide = instrument_program_cached(p, max_blocks=7)
        # A window too narrow for any loop yields empty marker tables —
        # different content, different key.
        narrow = instrument_program_cached(p, max_blocks=0)
        assert decode_key(p, wide, False) != decode_key(p, narrow, False)

    def test_program_content_changes_key(self):
        assert decode_key(_spin_program(), None, False) != decode_key(
            _spin_program("q"), None, False
        )


class TestDecodeSharing:
    def test_identical_content_shares_one_entry(self):
        d1 = get_decoded_program(_spin_program(), None, False)
        d2 = get_decoded_program(_spin_program(), None, False)
        assert d1 is d2
        info = decode_cache_info()
        assert info["entries"] == 1 and info["hits"] == 1

    def test_no_marked_flag_sharing_across_tools(self):
        """A spin tool's decoded program (marked loads baked in) must not
        be handed to a non-spin tool, and watchdog arming splits again."""
        p = _spin_program()
        imap = instrument_program_cached(p)
        plain = get_decoded_program(p, None, False)
        marked = get_decoded_program(p, imap, False)
        armed = get_decoded_program(p, imap, True)
        assert plain is not marked and marked is not armed
        assert plain.stats["marked_loads"] == 0
        assert marked.stats["marked_loads"] > 0
        assert not marked.livelock_armed and armed.livelock_armed

    def test_lru_bound(self, monkeypatch):
        import repro.vm.decode as decode_mod

        monkeypatch.setattr(decode_mod, "_CACHE_MAX", 3)
        for i in range(5):
            get_decoded_program(_spin_program(f"p{i}"), None, False)
        assert decode_cache_info()["entries"] == 3
        # The oldest entry was evicted: decoding p0 again is a miss.
        before = decode_cache_info()["misses"]
        get_decoded_program(_spin_program("p0"), None, False)
        assert decode_cache_info()["misses"] == before + 1


class TestInstrumentCache:
    def test_hit_on_identical_content(self):
        imap1 = instrument_program_cached(_spin_program())
        imap2 = instrument_program_cached(_spin_program())
        assert imap1 is imap2
        assert instrument_cache_info()["hits"] == 1

    def test_parameters_are_part_of_the_key(self):
        p = _spin_program()
        instrument_program_cached(p, max_blocks=7)
        instrument_program_cached(p, max_blocks=3)
        instrument_program_cached(p, max_blocks=7, inline_depth=0)
        assert instrument_cache_info()["entries"] == 3


class TestFingerprintMemo:
    def test_memo_and_invalidation(self):
        p = _spin_program()
        fp = p.fingerprint()
        assert p.fingerprint() == fp  # memoized, stable
        f = Function("extra")
        from repro.isa import instructions as ins
        from repro.isa.program import BasicBlock

        f.add_block(BasicBlock("entry", [ins.Halt()]))
        p.add_function(f)
        assert p.fingerprint() != fp  # add_function invalidated the memo
        fp2 = p.fingerprint()
        p.add_global(GlobalVar("g2", 1, [0]))
        assert p.fingerprint() != fp2  # add_global too

    def test_registry_memo_invalidated_on_reregister(self):
        wl = Workload(name="_decode_cache_wl", build=lambda: _spin_program("a"))
        register_workload(wl)
        try:
            fp = program_fingerprint("_decode_cache_wl")
            assert fp == resolve_workload("_decode_cache_wl").fresh_program().fingerprint()
            register_workload(
                dataclasses.replace(wl, build=lambda: _spin_program("b")),
                replace=True,
            )
            assert program_fingerprint("_decode_cache_wl") != fp
        finally:
            unregister_workload("_decode_cache_wl")


class TestResultCacheKey:
    def test_schema_is_7(self):
        assert CACHE_SCHEMA == 7

    def test_shard_is_part_of_the_key(self):
        from repro.harness.checkpoint import spec_key

        spec = RunSpec(workload="streamcluster", config="drd", trace_mode="replay")
        sharded = dataclasses.replace(spec, shard="0/4")
        assert spec_key(spec) != spec_key(sharded)

    def test_predecoded_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        tool = ToolConfig.helgrind_lib_spin(7)
        spec_fast = RunSpec(workload="streamcluster", config=tool)
        spec_legacy = RunSpec(
            workload="streamcluster",
            config=dataclasses.replace(tool, predecoded=False),
        )
        assert cache.key(spec_fast) != cache.key(spec_legacy)


class TestCrossProcessReuse:
    def test_pool_sweep_reuses_cached_outcomes(self, tmp_path):
        specs = sweep_specs(["streamcluster"], ["helgrind-lib-spin"], seeds=[1])
        cache = ResultCache(tmp_path / "c")
        first = run_sweep(specs, workers=2, cache=cache)
        assert first.summary().executed == 1 and not first.summary().failed
        second = run_sweep(specs, workers=2, cache=cache)
        assert second.summary().cached == 1 and second.summary().executed == 0
        # Cached replay reproduces the executed run bit-for-bit.
        assert (
            second.outcomes[0].report.fingerprint()
            == first.outcomes[0].report.fingerprint()
        )
        assert second.outcomes[0].steps == first.outcomes[0].steps

    def test_prewarm_fills_both_caches(self):
        wl = Workload(name="_decode_prewarm_wl", build=_spin_program)
        register_workload(wl)
        try:
            specs = [RunSpec(workload="_decode_prewarm_wl", config="helgrind-lib-spin")]
            assert prewarm_static(specs) == 1
            assert decode_cache_info()["entries"] == 1
            assert instrument_cache_info()["entries"] == 1
            # The run itself now hits both caches.
            p = resolve_workload("_decode_prewarm_wl").fresh_program()
            imap = instrument_program_cached(p)
            get_decoded_program(p, imap, False)
            assert decode_cache_info()["hits"] == 1
            assert instrument_cache_info()["hits"] == 1
        finally:
            unregister_workload("_decode_prewarm_wl")
