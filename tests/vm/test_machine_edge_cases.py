"""Interpreter edge cases: deep stacks, yields, spawn trees, print order."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler
from repro.vm.machine import MachineError

from tests.conftest import run_program


class TestCallStack:
    def test_deep_recursion(self):
        pb = ProgramBuilder("t")
        f = pb.function("down", params=("n",))
        base = f.le("n", 0)
        f.br(base, "stop", "rec")
        f.label("stop")
        f.ret(0)
        f.label("rec")
        r = f.call("down", [f.sub("n", 1)], want_result=True)
        f.ret(f.add(r, 1))
        mn = pb.function("main")
        mn.print_(mn.call("down", [200], want_result=True))
        mn.halt()
        _, result = run_program(pb.build())
        assert result.outputs == [(0, 200)]

    def test_mutual_recursion(self):
        pb = ProgramBuilder("t")
        even = pb.function("is_even", params=("n",))
        z = even.eq("n", 0)
        even.br(z, "yes", "no")
        even.label("yes")
        even.ret(1)
        even.label("no")
        r = even.call("is_odd", [even.sub("n", 1)], want_result=True)
        even.ret(r)
        odd = pb.function("is_odd", params=("n",))
        z = odd.eq("n", 0)
        odd.br(z, "yes", "no")
        odd.label("yes")
        odd.ret(0)
        odd.label("no")
        r = odd.call("is_even", [odd.sub("n", 1)], want_result=True)
        odd.ret(r)
        mn = pb.function("main")
        mn.print_(mn.call("is_even", [10], want_result=True))
        mn.print_(mn.call("is_even", [7], want_result=True))
        mn.halt()
        _, result = run_program(pb.build())
        assert [v for _, v in result.outputs] == [1, 0]

    def test_arguments_are_frame_local(self):
        pb = ProgramBuilder("t")
        h = pb.function("shadow", params=("x",))
        doubled = h.mul("x", 2)
        h.ret(doubled)
        mn = pb.function("main")
        x = mn.const(5)
        r = mn.call("shadow", [x], want_result=True)
        mn.print_(r)
        mn.print_(x)  # caller's register untouched
        mn.halt()
        _, result = run_program(pb.build())
        assert [v for _, v in result.outputs] == [10, 5]


class TestSpawnTrees:
    def test_threads_spawning_threads(self):
        pb = ProgramBuilder("t")
        pb.global_("LEAVES", 1)
        leaf = pb.function("leaf")
        a = leaf.addr("LEAVES")
        leaf.atomic_add(a, 1)
        leaf.ret()
        mid = pb.function("mid")
        t1 = mid.spawn("leaf", [])
        t2 = mid.spawn("leaf", [])
        mid.join(t1)
        mid.join(t2)
        mid.ret()
        mn = pb.function("main")
        kids = [mn.spawn("mid", []) for _ in range(3)]
        for k in kids:
            mn.join(k)
        mn.print_(mn.load_global("LEAVES"))
        mn.halt()
        for seed in range(4):
            _, result = run_program(pb.build(), seed=seed)
            assert result.outputs == [(0, 6)]

    def test_double_join_is_fine(self):
        pb = ProgramBuilder("t")
        w = pb.function("w")
        w.ret()
        mn = pb.function("main")
        t = mn.spawn("w", [])
        mn.join(t)
        mn.join(t)  # joining an exited thread again is a no-op wait
        mn.halt()
        _, result = run_program(pb.build())
        assert result.ok

    def test_main_exit_without_join_still_terminates(self):
        pb = ProgramBuilder("t")
        w = pb.function("w")
        w.nop(30)
        w.ret()
        mn = pb.function("main")
        mn.spawn("w", [])
        mn.ret()  # main returns; worker keeps running
        _, result = run_program(pb.build())
        assert result.ok  # machine runs until all threads exit


class TestYield:
    def test_yield_depresses_thread(self):
        """Under round-robin both threads alternate; a repeatedly yielding
        thread under the random scheduler runs less often."""
        pb = ProgramBuilder("t")
        pb.global_("SPUN", 1)
        spinner = pb.function("spinner")
        a = spinner.addr("SPUN")
        spinner.jmp("loop")
        spinner.label("loop")
        spinner.atomic_add(a, 1)
        spinner.yield_()
        spinner.jmp("loop")
        worker = pb.function("worker")
        worker.nop(200)
        worker.ret()
        mn = pb.function("main")
        s = mn.spawn("spinner", [])
        w = mn.spawn("worker", [])
        mn.join(w)
        mn.halt()
        _, result = run_program(pb.build(), max_steps=50_000)
        assert result.ok
        # The worker finished despite the infinite spinner: fairness works.


class TestOutputs:
    def test_print_order_within_thread(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        for v in (3, 1, 4, 1, 5):
            mn.print_(mn.const(v))
        mn.halt()
        _, result = run_program(pb.build())
        assert [v for _, v in result.outputs] == [3, 1, 4, 1, 5]

    def test_outputs_tag_thread_ids(self):
        pb = ProgramBuilder("t")
        w = pb.function("w")
        w.print_(w.const(7))
        w.ret()
        mn = pb.function("main")
        t = mn.spawn("w", [])
        mn.join(t)
        mn.print_(mn.const(8))
        mn.halt()
        _, result = run_program(pb.build())
        assert (1, 7) in result.outputs and (0, 8) in result.outputs


class TestStepApi:
    def test_manual_stepping(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        mn.print_(mn.const(1))
        mn.halt()
        machine = Machine(pb.build(), scheduler=RoundRobinScheduler())
        machine.step(0)  # const
        machine.step(0)  # print
        assert machine.outputs == [(0, 1)]

    def test_stepping_nonrunnable_thread_raises(self):
        pb = ProgramBuilder("t")
        mn = pb.function("main")
        mn.halt()
        machine = Machine(pb.build())
        machine.run()
        with pytest.raises(MachineError, match="not runnable"):
            machine.step(0)

    def test_event_count_tracks_emissions(self):
        pb = ProgramBuilder("t")
        pb.global_("G", 1)
        mn = pb.function("main")
        mn.store_global("G", 1)
        mn.halt()
        machine = Machine(pb.build())
        machine.run()
        assert machine.event_count >= 2  # the store + thread events
