"""Property-based allocator safety (DESIGN.md §6)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.builder import ProgramBuilder
from repro.vm.memory import Memory


def _memory():
    pb = ProgramBuilder("p")
    pb.global_("G", 4, init=(1, 2, 3, 4))
    mn = pb.function("main")
    mn.halt()
    return Memory(pb.build())


@given(st.lists(st.integers(1, 64), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_allocations_disjoint_and_zeroed(sizes):
    mem = _memory()
    blocks = [(mem.alloc(n), n) for n in sizes]
    # pairwise disjoint
    spans = sorted((base, base + n) for base, n in blocks)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    # zero-initialized and writable end to end
    for base, n in blocks:
        assert all(mem.load(base + i) == 0 for i in range(n))
        mem.store(base + n - 1, 7)
        assert mem.load(base + n - 1) == 7


@given(st.lists(st.integers(1, 16), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_allocations_never_overlap_globals(sizes):
    mem = _memory()
    g = mem.global_base("G")
    for n in sizes:
        base = mem.alloc(n)
        assert base > g + 4
    # the globals keep their values
    assert [mem.load(g + i) for i in range(4)] == [1, 2, 3, 4]


@given(st.lists(st.integers(1, 32), min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_accounting_tracks_allocations(sizes):
    mem = _memory()
    before = mem.allocated_words
    for n in sizes:
        mem.alloc(n)
    assert mem.allocated_words == before + sum(sizes)


@given(st.lists(st.integers(1, 16), min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_symbolization_covers_every_allocated_word(sizes):
    mem = _memory()
    for n in sizes:
        base = mem.alloc(n)
        for i in range(n):
            sym = mem.symbols.resolve(base + i)
            assert sym.startswith("heap@"), sym
