"""Batched event delivery mechanics (machine-side)."""

from repro import ProgramBuilder, RaceDetector, ToolConfig, build_library
from repro.vm import Machine, RandomScheduler
from repro.vm.events import Event, MemRead, MemWrite


def _two_writer_program():
    pb = ProgramBuilder("batch_demo")
    pb.global_("X", 1)
    worker = pb.function("worker")
    x = worker.addr("X")
    worker.store(x, worker.add(worker.load(x), 1))
    worker.ret()
    main = pb.function("main")
    t1 = main.spawn("worker", [])
    t2 = main.spawn("worker", [])
    main.join(t1)
    main.join(t2)
    main.halt()
    pb.link(build_library())
    return pb.build()


class RecordingSink:
    """A minimal batch-capable listener recording delivery shapes."""

    batch_capable = True
    skip_in_library_traffic = False

    def __init__(self):
        self.batches = []
        self.events = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def consume_batch(self, reads, writes, ctrl=()):
        self.batches.append((list(reads), list(writes), list(ctrl)))


def _run(listener, batch_size=4096):
    machine = Machine(
        _two_writer_program(),
        scheduler=RandomScheduler(1),
        listener=listener,
        batch_size=batch_size,
    )
    return machine, machine.run()


def test_batch_capable_sink_gets_batches_not_events():
    sink = RecordingSink()
    machine, result = _run(sink)
    assert result.ok
    assert sink.batches, "no batch was ever flushed"
    # memory traffic arrived through consume_batch, not __call__
    assert not any(isinstance(e, (MemRead, MemWrite)) for e in sink.events)
    reads = [t for b in sink.batches for t in b[0]]
    writes = [t for b in sink.batches for t in b[1]]
    assert reads and writes
    # tuple shape: (seq, tid, addr, value, loc, atomic, in_library)
    assert all(len(t) == 7 for t in reads + writes)


def test_batch_sequence_numbers_reconstruct_total_order():
    sink = RecordingSink()
    _run(sink)
    seqs = []
    for reads, writes, ctrl in sink.batches:
        merged = sorted(
            [t[0] for t in reads] + [t[0] for t in writes] + [s for s, _ in ctrl]
        )
        # batches are disjoint, in-order windows of the event stream
        if seqs:
            assert merged[0] > seqs[-1]
        seqs.extend(merged)
    assert seqs == sorted(seqs)


def test_small_batch_size_forces_intermediate_flushes():
    big = RecordingSink()
    _run(big, batch_size=100_000)
    small = RecordingSink()
    _run(small, batch_size=4)
    assert len(small.batches) > len(big.batches)
    # same traffic either way
    flat = lambda b: [t for batch in b for kind in batch for t in kind]
    assert len(flat(small.batches)) == len(flat(big.batches))


def test_legacy_listener_still_gets_events():
    class LegacyListener:
        def __init__(self):
            self.events = []

        def __call__(self, event: Event) -> None:
            self.events.append(event)

    legacy = LegacyListener()
    machine, result = _run(legacy)
    assert result.ok
    assert any(isinstance(e, MemWrite) for e in legacy.events)
    assert machine._sink is None


def test_direct_step_bypasses_batching():
    """Batching only engages inside run(); manual stepping delivers
    per-event so external drivers (traces, debuggers) see everything."""
    sink = RecordingSink()
    machine = Machine(
        _two_writer_program(), scheduler=RandomScheduler(1), listener=sink
    )
    for _ in range(200):
        runnable = machine._runnable()
        if not runnable:
            break
        machine.step(machine.scheduler.pick(runnable))
    assert not sink.batches
    assert any(isinstance(e, (MemRead, MemWrite)) for e in sink.events)


def test_detector_batched_flag_controls_capability():
    det = RaceDetector(ToolConfig.helgrind_lib())
    assert det.batch_capable
    from dataclasses import replace

    det_off = RaceDetector(replace(ToolConfig.helgrind_lib(), batched=False))
    assert not det_off.batch_capable


def test_skip_in_library_traffic_follows_interception_mode():
    assert RaceDetector(ToolConfig.helgrind_lib()).skip_in_library_traffic
    assert not RaceDetector(
        ToolConfig.helgrind_nolib_spin(7)
    ).skip_in_library_traffic
