"""Fault injection: every fault class, determinism, structured diagnostics."""

import pytest

from repro.analysis import instrument_program
from repro.vm import (
    Machine,
    MemWrite,
    RandomScheduler,
    SpuriousWakeEvent,
    StarvationEvent,
    StepBudgetClampedEvent,
    StoreDelayedEvent,
    StoreDroppedEvent,
    ThreadKilledEvent,
)
from repro.vm.faults import (
    FAULT_CLASSES,
    ClampSteps,
    DelayStore,
    DropStore,
    FaultPlan,
    KillThread,
    LivelockReport,
    SpuriousWakeup,
    StarveThread,
)
from repro.workloads import chaos_workloads


def _chaos_program(name):
    by_name = {wl.name: wl for wl in chaos_workloads()}
    return by_name[name].fresh_program()


def _run(program, faults=None, seed=1, livelock_bound=5_000, max_steps=100_000):
    imap = instrument_program(program)
    events = []
    machine = Machine(
        program,
        scheduler=RandomScheduler(seed),
        listener=events.append,
        instrumentation=imap,
        max_steps=max_steps,
        faults=faults,
        livelock_bound=livelock_bound,
    )
    result = machine.run()
    return machine, result, events


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(ClampSteps(max_steps=10),))

    def test_classes_are_canonically_ordered(self):
        plan = FaultPlan(
            faults=(ClampSteps(max_steps=10), KillThread(tid=1), DropStore("F"))
        )
        assert plan.classes == ("kill-thread", "drop-store", "clamp-steps")

    @pytest.mark.parametrize("fault_class", FAULT_CLASSES)
    def test_sample_is_deterministic(self, fault_class):
        a = FaultPlan.sample(fault_class, 3)
        b = FaultPlan.sample(fault_class, 3)
        assert a == b
        assert a.classes == (fault_class,)

    def test_sample_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            FaultPlan.sample("meteor-strike", 1)

    def test_unknown_symbol_fails_fast_at_attach(self):
        plan = FaultPlan(faults=(DropStore(symbol="NO_SUCH_GLOBAL"),))
        with pytest.raises(ValueError, match="NO_SUCH_GLOBAL"):
            Machine(_chaos_program("chaos_flag_handoff"), faults=plan)


class TestDropStore:
    PLAN = FaultPlan(faults=(DropStore(symbol="FLAG"),))

    def test_lost_counterpart_write_livelocks_the_spinner(self):
        _, result, events = self._go()
        assert result.livelocked and result.status == "livelock"
        assert not result.ok
        report = result.livelock
        assert isinstance(report, LivelockReport)
        assert report.tid == 1
        assert report.loop_name.startswith("consumer")
        assert report.cond_symbol.startswith("FLAG")
        assert report.spins > 0
        assert "livelock" in str(report) and "consumer" in str(report)

    def test_drop_is_announced_and_memory_never_written(self):
        machine, result, events = self._go()
        drops = [e for e in events if isinstance(e, StoreDroppedEvent)]
        assert len(drops) == 1
        addr = drops[0].addr
        # the dropped store emitted no MemWrite and left FLAG at 0
        assert not any(
            isinstance(e, MemWrite) and e.addr == addr for e in events
        )
        assert machine.memory.load(addr) == 0
        assert result.faults_injected == 1

    def _go(self):
        return _run(
            _chaos_program("chaos_flag_handoff"),
            faults=self.PLAN,
            livelock_bound=1_000,
        )


class TestDelayStore:
    def test_delayed_visibility_recovers(self):
        _, result, events = _run(
            _chaos_program("chaos_flag_handoff"),
            faults=FaultPlan(faults=(DelayStore(symbol="FLAG", delay=300),)),
        )
        assert result.ok and result.status == "ok"
        (delayed,) = [e for e in events if isinstance(e, StoreDelayedEvent)]
        # the buffered store is applied later as a real MemWrite
        applied = [
            e
            for e in events
            if isinstance(e, MemWrite) and e.addr == delayed.addr
        ]
        assert applied and applied[-1].step >= delayed.step + delayed.delay
        assert applied[-1].value == delayed.value


class TestKillThread:
    def test_killed_producer_never_raises_the_flag(self):
        _, result, events = _run(
            _chaos_program("chaos_flag_handoff"),
            faults=FaultPlan(faults=(KillThread(tid=2, at_step=0),)),
            livelock_bound=1_000,
        )
        assert any(isinstance(e, ThreadKilledEvent) for e in events)
        assert result.livelocked
        assert result.livelock.cond_symbol.startswith("FLAG")
        assert result.thread_diags[2].status == "killed"

    def test_crashed_holder_abandons_the_lock(self):
        _, result, _ = _run(
            _chaos_program("chaos_lock_pair"),
            faults=FaultPlan(faults=(KillThread(tid=1, at_step=5, when_holding=True),)),
            livelock_bound=1_000,
        )
        assert result.livelocked
        assert result.livelock.loop_name.startswith("mutex_lock")
        assert result.livelock.cond_symbol.startswith("M")
        victim = result.thread_diags[1]
        assert victim.status == "killed"
        assert any(s.startswith("M") for s in victim.held_symbols)
        assert "abandoning" in victim.describe()
        assert "livelock" in result.diagnose()


class TestSpuriousWakeup:
    def test_wakeup_releases_a_lone_waiter(self):
        _, result, events = _run(
            _chaos_program("chaos_cv_spurious"),
            faults=FaultPlan(faults=(SpuriousWakeup(symbol="CV", at_step=600),)),
        )
        assert result.ok
        (wake,) = [e for e in events if isinstance(e, SpuriousWakeEvent)]
        assert wake.tid == -1  # injected from no thread


class TestStarvation:
    def test_starved_thread_catches_up(self):
        _, result, events = _run(
            _chaos_program("chaos_flag_handoff"),
            faults=FaultPlan(faults=(StarveThread(tid=1, start_step=0, duration=600),)),
        )
        assert result.ok
        (starve,) = [e for e in events if isinstance(e, StarvationEvent)]
        assert starve.tid == 1 and starve.duration == 600

    def test_sole_runnable_thread_is_never_starved(self):
        # Starving the only thread would stall the clock without modeling
        # anything: the filter must fall back to the unfiltered pool.
        _, result, _ = _run(
            _chaos_program("chaos_cv_spurious"),
            faults=FaultPlan(
                faults=(
                    StarveThread(tid=0, start_step=0, duration=50),
                    SpuriousWakeup(symbol="CV", at_step=600),
                )
            ),
        )
        assert result.ok


class TestClampSteps:
    def test_budget_clamp_truncates_the_run(self):
        machine, result, events = _run(
            _chaos_program("chaos_lock_pair"),
            faults=FaultPlan(faults=(ClampSteps(max_steps=60),)),
        )
        assert result.timed_out and not result.ok
        assert machine.step_count == 60
        (clamp,) = [e for e in events if isinstance(e, StepBudgetClampedEvent)]
        assert clamp.max_steps == 60
        assert result.faults_injected >= 1
        assert "step budget" in result.diagnose()


class TestDeterminism:
    CASES = [
        ("chaos_flag_handoff", FaultPlan(faults=(DropStore(symbol="FLAG"),))),
        ("chaos_flag_handoff", FaultPlan(faults=(KillThread(tid=2, at_step=0),))),
        ("chaos_flag_handoff", FaultPlan(faults=(DelayStore(symbol="FLAG", delay=123),))),
        ("chaos_lock_pair", FaultPlan(faults=(ClampSteps(max_steps=60),))),
    ]

    @pytest.mark.parametrize("name,plan", CASES)
    def test_same_seeds_byte_identical_streams(self, name, plan):
        runs = []
        for _ in range(2):
            _, result, events = _run(
                _chaos_program(name), faults=plan, livelock_bound=1_000
            )
            runs.append((result, [repr(e) for e in events]))
        (res_a, ev_a), (res_b, ev_b) = runs
        assert ev_a == ev_b
        assert res_a.steps == res_b.steps
        assert res_a.status == res_b.status
        assert res_a.diagnose() == res_b.diagnose()

    def test_different_scheduler_seed_may_differ_but_stays_structured(self):
        plan = FaultPlan(faults=(DropStore(symbol="FLAG"),))
        for seed in (1, 2, 3):
            _, result, _ = _run(
                _chaos_program("chaos_flag_handoff"),
                faults=plan,
                seed=seed,
                livelock_bound=1_000,
            )
            assert result.status == "livelock"
            assert result.livelock.cond_symbol.startswith("FLAG")


class TestLivelockWatchdogWithoutFaults:
    def test_bound_none_never_reports(self):
        _, result, _ = _run(_chaos_program("chaos_flag_handoff"), livelock_bound=None)
        assert result.ok and result.livelock is None

    def test_generous_bound_stays_quiet_on_healthy_run(self):
        _, result, _ = _run(_chaos_program("chaos_flag_handoff"), livelock_bound=5_000)
        assert result.ok and not result.livelocked
