"""Scheduler determinism and fairness properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.scheduler import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


class TestRoundRobin:
    def test_rotates(self):
        s = RoundRobinScheduler()
        picks = [s.pick([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_handles_changing_runnable_set(self):
        s = RoundRobinScheduler()
        assert s.pick([0, 1]) == 0
        assert s.pick([1]) == 1
        assert s.pick([0, 2]) == 2
        assert s.pick([0, 2]) == 0


class TestRandom:
    def test_deterministic_per_seed(self):
        a = [RandomScheduler(5).pick([0, 1, 2]) for _ in range(1)]
        s1, s2 = RandomScheduler(5), RandomScheduler(5)
        assert [s1.pick([0, 1, 2]) for _ in range(50)] == [
            s2.pick([0, 1, 2]) for _ in range(50)
        ]

    def test_single_thread_fast_path(self):
        s = RandomScheduler(0)
        assert all(s.pick([3]) == 3 for _ in range(10))

    def test_yield_penalty_skips_spinner(self):
        s = RandomScheduler(0, penalty=8)
        s.on_yield(0)
        picks = [s.pick([0, 1]) for _ in range(8)]
        assert all(p == 1 for p in picks)

    def test_yielding_only_thread_still_runs(self):
        s = RandomScheduler(0)
        s.on_yield(0)
        assert s.pick([0]) == 0


class TestAdversarial:
    def test_deterministic_per_seed(self):
        s1, s2 = AdversarialScheduler(7), AdversarialScheduler(7)
        assert [s1.pick([0, 1, 2]) for _ in range(60)] == [
            s2.pick([0, 1, 2]) for _ in range(60)
        ]

    def test_runs_bursts(self):
        s = AdversarialScheduler(1, burst=10)
        picks = [s.pick([0, 1]) for _ in range(40)]
        # bursts imply consecutive repeats somewhere
        assert any(picks[i] == picks[i + 1] for i in range(len(picks) - 1))

    def test_yield_ends_burst(self):
        s = AdversarialScheduler(1, burst=50)
        first = s.pick([0, 1])
        s.on_yield(first)
        nxt = s.pick([0, 1])
        assert nxt != first


@given(
    seed=st.integers(0, 1000),
    nthreads=st.integers(1, 8),
    steps=st.integers(20, 200),
)
@settings(max_examples=60, deadline=None)
def test_random_scheduler_fairness(seed, nthreads, steps):
    """Property: every runnable thread is eventually picked — no thread
    starves over a long window (required for spin loops to make progress)."""
    s = RandomScheduler(seed)
    runnable = list(range(nthreads))
    picks = [s.pick(runnable) for _ in range(steps * nthreads)]
    assert set(picks) == set(runnable)


@given(seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_random_scheduler_picks_only_runnable(seed):
    s = RandomScheduler(seed)
    for runnable in ([0], [4, 9], [1, 2, 3], [7]):
        for _ in range(5):
            assert s.pick(runnable) in runnable


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_adversarial_picks_only_runnable(seed):
    s = AdversarialScheduler(seed)
    for runnable in ([0, 1], [2], [0, 3, 5]):
        for _ in range(10):
            assert s.pick(runnable) in runnable
