"""Scheduler determinism and fairness properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.scheduler import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


class TestRoundRobin:
    def test_rotates(self):
        s = RoundRobinScheduler()
        picks = [s.pick([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_handles_changing_runnable_set(self):
        s = RoundRobinScheduler()
        assert s.pick([0, 1]) == 0
        assert s.pick([1]) == 1
        assert s.pick([0, 2]) == 2
        assert s.pick([0, 2]) == 0

    def test_yield_penalty_skips_spinner(self):
        s = RoundRobinScheduler(penalty=4)
        s.on_yield(0)
        picks = [s.pick([0, 1]) for _ in range(4)]
        assert all(p == 1 for p in picks)
        # penalty elapsed: thread 0 rejoins the rotation
        assert 0 in [s.pick([0, 1]) for _ in range(2)]

    def test_yielding_only_thread_still_runs(self):
        s = RoundRobinScheduler()
        s.on_yield(0)
        assert s.pick([0]) == 0

    def test_yield_handling_is_deterministic(self):
        seqs = []
        for _ in range(2):
            s = RoundRobinScheduler(penalty=3)
            picks = []
            for i in range(12):
                chosen = s.pick([0, 1, 2])
                picks.append(chosen)
                if i == 2:
                    s.on_yield(chosen)
            seqs.append(picks)
        assert seqs[0] == seqs[1]

    def test_penalty_decays_while_thread_is_blocked(self):
        s = RoundRobinScheduler(penalty=4)
        s.on_yield(0)
        for _ in range(4):
            assert s.pick([1]) == 1
        assert s._penalties.get(0, 0) == 0


class TestRandom:
    def test_deterministic_per_seed(self):
        a = [RandomScheduler(5).pick([0, 1, 2]) for _ in range(1)]
        s1, s2 = RandomScheduler(5), RandomScheduler(5)
        assert [s1.pick([0, 1, 2]) for _ in range(50)] == [
            s2.pick([0, 1, 2]) for _ in range(50)
        ]

    def test_single_thread_fast_path(self):
        s = RandomScheduler(0)
        assert all(s.pick([3]) == 3 for _ in range(10))

    def test_yield_penalty_skips_spinner(self):
        s = RandomScheduler(0, penalty=8)
        s.on_yield(0)
        picks = [s.pick([0, 1]) for _ in range(8)]
        assert all(p == 1 for p in picks)

    def test_yielding_only_thread_still_runs(self):
        s = RandomScheduler(0)
        s.on_yield(0)
        assert s.pick([0]) == 0

    def test_penalty_decays_while_thread_is_blocked(self):
        """Regression: a thread that yields and then blocks must not wake
        up still carrying its full penalty — penalties decay on every
        pick, not just for currently-runnable tids."""
        s = RandomScheduler(0, penalty=4)
        s.on_yield(0)
        for _ in range(4):
            assert s.pick([1]) == 1  # thread 0 is blocked meanwhile
        assert s._penalties.get(0, 0) == 0
        # Woken thread competes immediately: it shows up among the next
        # few picks instead of being starved for another full window.
        picks = [s.pick([0, 1]) for _ in range(10)]
        assert 0 in picks

    def test_woken_thread_not_starved_after_waking(self):
        """End-to-end fairness: yielded-then-blocked thread 0 wakes after
        its penalty window has elapsed and is eligible on the very first
        pick (the eligible pool must contain it)."""
        for seed in range(20):
            s = RandomScheduler(seed, penalty=8)
            s.on_yield(0)
            for _ in range(8):
                s.pick([1])
            # Penalty fully decayed: with both runnable, thread 0 must be
            # *eligible* — i.e. picked at least once across seeds quickly.
            first_picks = [s.pick([0, 1]) for _ in range(4)]
            if 0 in first_picks:
                break
        else:
            raise AssertionError("woken thread was never picked promptly")


class TestAdversarial:
    def test_deterministic_per_seed(self):
        s1, s2 = AdversarialScheduler(7), AdversarialScheduler(7)
        assert [s1.pick([0, 1, 2]) for _ in range(60)] == [
            s2.pick([0, 1, 2]) for _ in range(60)
        ]

    def test_runs_bursts(self):
        s = AdversarialScheduler(1, burst=10)
        picks = [s.pick([0, 1]) for _ in range(40)]
        # bursts imply consecutive repeats somewhere
        assert any(picks[i] == picks[i + 1] for i in range(len(picks) - 1))

    def test_yield_ends_burst(self):
        s = AdversarialScheduler(1, burst=50)
        first = s.pick([0, 1])
        s.on_yield(first)
        nxt = s.pick([0, 1])
        assert nxt != first

    def test_penalty_decays_while_thread_is_blocked(self):
        """Same regression as RandomScheduler: blocked threads' penalties
        must decay with every pick."""
        s = AdversarialScheduler(3)
        s.on_yield(0)  # fixed penalty of 8
        for _ in range(8):
            assert s.pick([1]) == 1
        assert s._penalties.get(0, 0) == 0


@given(
    seed=st.integers(0, 1000),
    nthreads=st.integers(1, 8),
    steps=st.integers(20, 200),
)
@settings(max_examples=60, deadline=None)
def test_random_scheduler_fairness(seed, nthreads, steps):
    """Property: every runnable thread is eventually picked — no thread
    starves over a long window (required for spin loops to make progress)."""
    s = RandomScheduler(seed)
    runnable = list(range(nthreads))
    picks = [s.pick(runnable) for _ in range(steps * nthreads)]
    assert set(picks) == set(runnable)


@given(seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_random_scheduler_picks_only_runnable(seed):
    s = RandomScheduler(seed)
    for runnable in ([0], [4, 9], [1, 2, 3], [7]):
        for _ in range(5):
            assert s.pick(runnable) in runnable


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_adversarial_picks_only_runnable(seed):
    s = AdversarialScheduler(seed)
    for runnable in ([0, 1], [2], [0, 3, 5]):
        for _ in range(10):
            assert s.pick(runnable) in runnable
