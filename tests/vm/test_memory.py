"""Unit tests for memory layout, allocation, and symbolization."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.program import CodeLocation
from repro.vm.memory import GLOBAL_BASE, HEAP_BASE, Memory, MemoryError_


def _program_with_globals():
    pb = ProgramBuilder("p")
    pb.global_("A", 2, init=(5, 6))
    pb.global_("B", 3)
    mn = pb.function("main")
    mn.halt()
    return pb.build()


class TestLayout:
    def test_globals_laid_out_in_order(self):
        mem = Memory(_program_with_globals())
        assert mem.global_base("A") == GLOBAL_BASE
        assert mem.global_base("B") == GLOBAL_BASE + 2

    def test_initial_values(self):
        mem = Memory(_program_with_globals())
        a = mem.global_base("A")
        assert mem.load(a) == 5
        assert mem.load(a + 1) == 6
        b = mem.global_base("B")
        assert mem.load(b) == 0

    def test_unknown_global_raises(self):
        mem = Memory(_program_with_globals())
        with pytest.raises(MemoryError_):
            mem.global_base("NOPE")


class TestAccess:
    def test_store_then_load(self):
        mem = Memory(_program_with_globals())
        a = mem.global_base("A")
        mem.store(a, 42)
        assert mem.load(a) == 42

    def test_unmapped_load_raises(self):
        mem = Memory(_program_with_globals())
        with pytest.raises(MemoryError_, match="unmapped"):
            mem.load(0xDEAD)

    def test_unmapped_store_raises(self):
        mem = Memory(_program_with_globals())
        with pytest.raises(MemoryError_, match="unmapped"):
            mem.store(0xDEAD, 1)


class TestHeap:
    def test_alloc_returns_zeroed_block(self):
        mem = Memory(_program_with_globals())
        base = mem.alloc(4)
        assert base >= HEAP_BASE
        assert all(mem.load(base + i) == 0 for i in range(4))

    def test_alloc_blocks_disjoint(self):
        mem = Memory(_program_with_globals())
        a = mem.alloc(4)
        b = mem.alloc(4)
        assert b >= a + 4

    def test_alloc_nonpositive_raises(self):
        mem = Memory(_program_with_globals())
        with pytest.raises(MemoryError_):
            mem.alloc(0)

    def test_alloc_site_tagged(self):
        mem = Memory(_program_with_globals())
        loc = CodeLocation("main", "entry", 3)
        base = mem.alloc(2, site=loc)
        assert "main:entry:3" in mem.symbols.resolve(base)


class TestSymbolization:
    def test_scalar_symbol_has_no_offset(self):
        pb = ProgramBuilder("p")
        pb.global_("X", 1)
        mn = pb.function("main")
        mn.halt()
        mem = Memory(pb.build())
        assert mem.symbols.resolve(mem.global_base("X")) == "X"

    def test_array_symbol_with_offset(self):
        mem = Memory(_program_with_globals())
        assert mem.symbols.resolve(mem.global_base("B") + 2) == "B+2"

    def test_unknown_address_is_hex(self):
        mem = Memory(_program_with_globals())
        assert mem.symbols.resolve(0xABCDEF) == hex(0xABCDEF)

    def test_base_of(self):
        mem = Memory(_program_with_globals())
        assert mem.symbols.base_of("B") == mem.global_base("B")
        with pytest.raises(KeyError):
            mem.symbols.base_of("NOPE")

    def test_segment_of(self):
        mem = Memory(_program_with_globals())
        seg = mem.symbols.segment_of(mem.global_base("A") + 1)
        assert seg is not None and seg.name == "A"
        assert mem.symbols.segment_of(0x1) is None
