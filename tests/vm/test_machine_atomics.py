"""Atomic read-modify-write semantics."""

from repro.isa.builder import ProgramBuilder
from repro.isa import instructions as ins
from repro.vm import Machine, RandomScheduler

from tests.conftest import run_program


def _run(body):
    pb = ProgramBuilder("t")
    pb.global_("W", 1, init=(10,))
    mn = pb.function("main")
    body(mn)
    mn.halt()
    machine, result = run_program(pb.build())
    return machine, result


class TestCas:
    def test_successful_swap_returns_old_and_writes(self):
        def body(mn):
            a = mn.addr("W")
            old = mn.atomic_cas(a, 10, 99)
            mn.print_(old)
            mn.print_(mn.load(a))

        _, result = _run(body)
        assert [v for _, v in result.outputs] == [10, 99]

    def test_failed_swap_leaves_memory(self):
        def body(mn):
            a = mn.addr("W")
            old = mn.atomic_cas(a, 555, 99)
            mn.print_(old)
            mn.print_(mn.load(a))

        _, result = _run(body)
        assert [v for _, v in result.outputs] == [10, 10]


class TestFetchAdd:
    def test_returns_old_value(self):
        def body(mn):
            a = mn.addr("W")
            mn.print_(mn.atomic_add(a, 5))
            mn.print_(mn.load(a))

        _, result = _run(body)
        assert [v for _, v in result.outputs] == [10, 15]

    def test_negative_amount(self):
        def body(mn):
            a = mn.addr("W")
            mn.atomic_add(a, -3)
            mn.print_(mn.load(a))

        _, result = _run(body)
        assert [v for _, v in result.outputs] == [7]


class TestXchg:
    def test_swap(self):
        def body(mn):
            a = mn.addr("W")
            mn.print_(mn.atomic_xchg(a, 77))
            mn.print_(mn.load(a))

        _, result = _run(body)
        assert [v for _, v in result.outputs] == [10, 77]


class TestAtomicityUnderContention:
    def test_fetch_add_never_loses_updates(self):
        """Unlike plain load-add-store, fetch-and-add is one VM step and
        cannot lose updates under any interleaving."""
        pb = ProgramBuilder("t")
        pb.global_("C", 1)
        w = pb.function("worker", params=("n",))
        i = w.reg("i")
        w.emit(ins.Const(i, 0))
        w.jmp("loop")
        w.label("loop")
        a = w.addr("C")
        w.atomic_add(a, 1)
        w.emit(ins.Mov(i, w.add(i, 1)))
        w.br(w.lt(i, "n"), "loop", "done")
        w.label("done")
        w.ret()
        mn = pb.function("main")
        n = mn.const(25)
        tids = [mn.spawn("worker", [n]) for _ in range(4)]
        for t in tids:
            mn.join(t)
        mn.print_(mn.load_global("C"))
        mn.halt()
        prog = pb.build()
        for seed in range(6):
            result = Machine(prog, scheduler=RandomScheduler(seed)).run()
            assert result.outputs[0][1] == 100

    def test_cas_mutual_exclusion(self):
        """A CAS-guarded critical section keeps a plain counter exact."""
        pb = ProgramBuilder("t")
        pb.global_("L", 1)
        pb.global_("C", 1)
        w = pb.function("worker", params=("n",))
        i = w.reg("i")
        w.emit(ins.Const(i, 0))
        w.jmp("try")
        w.label("try")
        l = w.addr("L")
        got = w.eq(w.atomic_cas(l, 0, 1), 0)
        w.br(got, "crit", "back")
        w.label("back")
        w.yield_()
        w.jmp("try")
        w.label("crit")
        c = w.addr("C")
        w.store(c, w.add(w.load(c), 1))
        w.store(l, 0)
        w.emit(ins.Mov(i, w.add(i, 1)))
        w.br(w.lt(i, "n"), "try", "done")
        w.label("done")
        w.ret()
        mn = pb.function("main")
        n = mn.const(20)
        t1 = mn.spawn("worker", [n])
        t2 = mn.spawn("worker", [n])
        mn.join(t1)
        mn.join(t2)
        mn.print_(mn.load_global("C"))
        mn.halt()
        prog = pb.build()
        for seed in range(5):
            result = Machine(prog, scheduler=RandomScheduler(seed)).run()
            assert result.outputs[0][1] == 40
