#!/usr/bin/env python
"""Kill-and-resume smoke test for the sharded grand sweep.

1. Launches a journaled 2-worker grand-sweep subset (suite cells plus
   the full chaos matrix, each analyzed as 2 shard units) in a
   subprocess and SIGKILLs the whole process group once the journal
   holds some — but not all — completed shard records.
2. Reruns with ``resume=True`` and asserts the journaled shard units are
   served without re-execution, every cell merges, and every merged
   fingerprint is bit-identical to an unsharded
   :func:`repro.trace.analyze_trace` of the same stored recording (the
   engine's ``verify_sample`` path re-analyzes each cell independently).

Exits non-zero (with a message) on any violation.  Used by the CI
``shard-smoke`` job; safe to run locally from the repo root.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.grand import grand_specs, run_grand_sweep  # noqa: E402

TOOLS = ["helgrind-lib", "helgrind-lib-spin7"]
SHARDS = 2
SUITE_LIMIT = 4


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def child_main(journal_dir: str) -> None:
    run_grand_sweep(
        shards=SHARDS,
        workers=2,
        configs=TOOLS,
        suite_limit=SUITE_LIMIT,
        include_chaos=True,
        journal_dir=journal_dir,
    )


def journal_entries(journal_dir: Path) -> int:
    files = list(journal_dir.glob("sweep-*.jsonl"))
    if not files:
        return 0
    return max(len(files[0].read_text().splitlines()) - 1, 0)


def main() -> None:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        child_main(sys.argv[2])
        return
    work = REPO / ".repro-shard-smoke"
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)
    journal_dir = work / "journal"
    try:
        total = len(grand_specs(SHARDS, TOOLS, SUITE_LIMIT, True))
        print(f"launching journaled 2-worker grand sweep ({total} shard units) ...")
        proc = subprocess.Popen(
            [sys.executable, __file__, "--child", str(journal_dir)],
            cwd=REPO,
            start_new_session=True,  # so the kill takes the workers down too
        )
        deadline = time.monotonic() + 120
        try:
            while True:
                done = journal_entries(journal_dir)
                if done >= 4:
                    break
                if proc.poll() is not None:
                    fail("child grand sweep finished before it could be killed")
                if time.monotonic() > deadline:
                    fail("child grand sweep journaled nothing in 120s")
                time.sleep(0.01)
            os.killpg(proc.pid, signal.SIGKILL)
        finally:
            proc.wait()
        pre_kill = journal_entries(journal_dir)
        if pre_kill >= total:
            fail("grand sweep completed before the kill landed")
        print(f"killed with {pre_kill}/{total} shard units journaled")

        result = run_grand_sweep(
            shards=SHARDS,
            workers=2,
            configs=TOOLS,
            suite_limit=SUITE_LIMIT,
            include_chaos=True,
            journal_dir=journal_dir,
            resume=True,
            verify_sample=10**6,  # re-check every merged cell unsharded
        )
        if result.sweep.resumed < pre_kill:
            fail(
                f"only {result.sweep.resumed} of {pre_kill} journaled shard "
                "units were served from the checkpoint"
            )
        if result.incomplete:
            fail(
                f"{len(result.incomplete)} cell(s) failed to merge after "
                f"resume: {[c.error for c in result.incomplete][:3]}"
            )
        unverified = [c for c in result.cells if c.verified is not True]
        if unverified:
            fail(
                f"{len(unverified)} merged fingerprint(s) diverged from "
                f"unsharded analysis: "
                f"{[(c.workload, c.tool) for c in unverified][:5]}"
            )
        print(
            f"resume OK: {result.sweep.resumed} shard units served from the "
            f"journal, {total - result.sweep.resumed} re-executed, "
            f"{len(result.cells)} cells merged, every fingerprint "
            "bit-identical to unsharded analysis"
        )
    finally:
        shutil.rmtree(work, ignore_errors=True)
    print("shard smoke: all checks passed")


if __name__ == "__main__":
    main()
