#!/usr/bin/env python
"""Kill-and-resume smoke test for the sharded grand sweep.

1. Launches a journaled 2-worker grand-sweep subset (suite cells plus
   the full chaos matrix, each analyzed as 2 shard units) in a
   subprocess and SIGKILLs the whole process group once the journal
   holds some — but not all — completed shard records.
2. Reruns with ``resume=True`` and asserts the journaled shard units are
   served without re-execution, every cell merges, and every merged
   fingerprint is bit-identical to an unsharded
   :func:`repro.trace.analyze_trace` of the same stored recording (the
   engine's ``verify_sample`` path re-analyzes each cell independently).

Exits non-zero (with a message) on any violation.  Used by the CI
``shard-smoke`` job; safe to run locally from the repo root.
"""

from __future__ import annotations

import sys

from _smoke_common import (
    fail,
    journal_entries,
    sigkill_when,
    spawn_child,
    workdir,
)

from repro.harness.grand import grand_specs, run_grand_sweep  # noqa: E402

TOOLS = ["helgrind-lib", "helgrind-lib-spin7"]
SHARDS = 2
SUITE_LIMIT = 4


def child_main(journal_dir: str) -> None:
    run_grand_sweep(
        shards=SHARDS,
        workers=2,
        configs=TOOLS,
        suite_limit=SUITE_LIMIT,
        include_chaos=True,
        journal_dir=journal_dir,
    )


def main() -> None:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        child_main(sys.argv[2])
        return
    with workdir(".repro-shard-smoke") as work:
        journal_dir = work / "journal"
        total = len(grand_specs(SHARDS, TOOLS, SUITE_LIMIT, True))
        print(f"launching journaled 2-worker grand sweep ({total} shard units) ...")
        proc = spawn_child(__file__, str(journal_dir))
        pre_kill = sigkill_when(
            proc,
            lambda: journal_entries(journal_dir),
            min_count=4,
            what="child grand sweep",
        )
        if pre_kill >= total:
            fail("grand sweep completed before the kill landed")
        print(f"killed with {pre_kill}/{total} shard units journaled")

        result = run_grand_sweep(
            shards=SHARDS,
            workers=2,
            configs=TOOLS,
            suite_limit=SUITE_LIMIT,
            include_chaos=True,
            journal_dir=journal_dir,
            resume=True,
            verify_sample=10**6,  # re-check every merged cell unsharded
        )
        if result.sweep.resumed < pre_kill:
            fail(
                f"only {result.sweep.resumed} of {pre_kill} journaled shard "
                "units were served from the checkpoint"
            )
        if result.incomplete:
            fail(
                f"{len(result.incomplete)} cell(s) failed to merge after "
                f"resume: {[c.error for c in result.incomplete][:3]}"
            )
        unverified = [c for c in result.cells if c.verified is not True]
        if unverified:
            fail(
                f"{len(unverified)} merged fingerprint(s) diverged from "
                f"unsharded analysis: "
                f"{[(c.workload, c.tool) for c in unverified][:5]}"
            )
        print(
            f"resume OK: {result.sweep.resumed} shard units served from the "
            f"journal, {total - result.sweep.resumed} re-executed, "
            f"{len(result.cells)} cells merged, every fingerprint "
            "bit-identical to unsharded analysis"
        )
    print("shard smoke: all checks passed")


if __name__ == "__main__":
    main()
