#!/usr/bin/env python
"""Kill-and-resume smoke test for the sweep checkpoint journal.

1. Runs an uninterrupted serial baseline of a PARSEC sweep.
2. Launches the same sweep (2 workers, journaled) in a subprocess and
   SIGKILLs the whole process group mid-flight, once the journal holds
   some — but not all — completed records.
3. Reruns with ``resume=True`` and asserts the merged result is
   identical to the baseline on every stable field, with at least the
   pre-kill journaled fraction served without re-execution.
4. Bit-flips a cache entry and asserts the corruption is quarantined
   with a structured note — never raised — and that the sweep heals by
   re-executing.

Exits non-zero (with a message) on any violation.  Used by the CI
``resume-smoke`` job; safe to run locally from the repo root.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from _smoke_common import (
    fail,
    journal_entries,
    parsec_names,
    sigkill_when,
    spawn_child,
    workdir,
)

from repro.harness.parallel import ResultCache, run_sweep, sweep_specs  # noqa: E402

TOOLS = ["helgrind-lib", "helgrind-lib-spin7"]
SEEDS = [1]

#: RunRecord fields that must survive kill+resume bit-identically
#: (everything except wall-clock timings and the attempt counter)
STABLE_FIELDS = (
    "workload", "tool", "seed", "status", "steps", "events",
    "detector_words", "spin_loops", "adhoc_edges", "racy_contexts", "faults",
)


def _specs():
    return sweep_specs(parsec_names(), TOOLS, SEEDS)


def stable(rec):
    status = "ok" if rec.status == "cached" else rec.status
    return (status,) + tuple(
        getattr(rec, f) for f in STABLE_FIELDS if f != "status"
    )


def child_main(journal_dir: str) -> None:
    run_sweep(_specs(), workers=2, journal_dir=journal_dir)


def kill_resume_check(work: Path) -> None:
    journal_dir = work / "journal"
    specs = _specs()
    print(f"baseline: {len(specs)} specs, serial ...")
    baseline = run_sweep(specs, workers=0)

    print("launching journaled 2-worker sweep to be SIGKILLed ...")
    proc = spawn_child(__file__, str(journal_dir))
    pre_kill = sigkill_when(
        proc,
        lambda: journal_entries(journal_dir),
        min_count=2,
        what="child sweep",
    )
    if pre_kill >= len(specs):
        fail("sweep completed before the kill landed; nothing to resume")
    print(f"killed with {pre_kill}/{len(specs)} records journaled")

    resumed = run_sweep(specs, workers=2, journal_dir=journal_dir, resume=True)
    if resumed.resumed < pre_kill:
        fail(
            f"only {resumed.resumed} of {pre_kill} journaled runs were "
            "served from the checkpoint"
        )
    got = [stable(r) for r in resumed.records]
    want = [stable(r) for r in baseline.records]
    if got != want:
        for g, w in zip(got, want):
            if g != w:
                fail(f"resumed record diverged from baseline: {g} != {w}")
        fail(f"record count mismatch: {len(got)} != {len(want)}")
    print(
        f"resume OK: {resumed.resumed} served from journal, "
        f"{len(specs) - resumed.resumed} re-executed, records identical"
    )


def cache_corruption_check(work: Path) -> None:
    cache_dir = work / "cache"
    cache = ResultCache(cache_dir)
    specs = _specs()[:4]
    run_sweep(specs, workers=0, cache=cache)
    entries = sorted(cache_dir.glob("*.pkl"))
    if not entries:
        fail("cache primed no entries")
    blob = bytearray(entries[0].read_bytes())
    blob[-1] ^= 0xFF  # payload bit-flip: framing intact, checksum wrong
    entries[0].write_bytes(bytes(blob))

    result = run_sweep(specs, workers=0, cache=ResultCache(cache_dir))
    if any(r.failed for r in result.records):
        fail("sweep over a corrupted cache reported failures")
    notes = list((cache_dir / "corrupt").glob("*.note.json"))
    if len(notes) != 1:
        fail(f"expected 1 quarantine note, found {len(notes)}")
    note = json.loads(notes[0].read_text())
    if note.get("reason") != "checksum-mismatch":
        fail(f"unexpected quarantine reason: {note}")
    report = ResultCache(cache_dir).doctor()
    if report.corrupt_entries != 1:
        fail(f"doctor saw {report.corrupt_entries} corrupt entries, expected 1")
    print(
        f"cache OK: corruption quarantined ({note['reason']}), sweep healed, "
        f"doctor scanned {report.scanned} with {report.ok} ok"
    )


def main() -> None:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        child_main(sys.argv[2])
        return
    with workdir(".repro-resume-smoke") as work:
        kill_resume_check(work)
        cache_corruption_check(work)
    print("kill-resume smoke: all checks passed")


if __name__ == "__main__":
    main()
