#!/usr/bin/env python
"""Record-once-analyze-anywhere smoke test for the trace store.

1. Runs a live serial baseline of a PARSEC subset under two presets.
2. Runs the same sweep in replay mode on 2 workers: the parent records
   each (program, seed) cell once into the trace store, workers analyze
   detector-only, and every outcome's report fingerprint must equal the
   live baseline's.
3. Re-analyzes the *same* recordings under a second preset set (drd,
   eraser) — zero new recordings may be made — and checks those
   fingerprints against live runs too.
4. Asserts the store holds exactly one entry per cell (the recording is
   shared across presets) and that a cached replay re-run executes
   nothing.

Exits non-zero (with a message) on any violation.  Used by the CI
``replay-smoke`` job; safe to run locally from the repo root.
"""

from __future__ import annotations

import dataclasses

from _smoke_common import fail, parsec_names, workdir

from repro.harness.parallel import (  # noqa: E402
    ResultCache,
    run_sweep,
    sweep_specs,
)
from repro.trace import TraceStore  # noqa: E402

FIRST_TOOLS = ["helgrind-lib", "helgrind-lib-spin7"]
SECOND_TOOLS = ["drd", "eraser"]
SEEDS = [1]
LIMIT = 4


def _specs(tools, trace_mode):
    return [
        dataclasses.replace(s, trace_mode=trace_mode)
        for s in sweep_specs(parsec_names(LIMIT), tools, SEEDS)
    ]


def fingerprints(result):
    return {
        (o.workload.name, o.config.name, o.seed): o.report.fingerprint()
        for o in result.outcomes
    }


def check(work) -> int:
    trace_dir = work / "traces"

    # 1. live baseline, both preset sets
    live = run_sweep(_specs(FIRST_TOOLS + SECOND_TOOLS, "live"), workers=0)
    if live.failed:
        fail(f"live baseline failed: {live.failed}")
    baseline = fingerprints(live)

    # 2. replay-mode sweep on 2 workers, first preset set
    replayed = run_sweep(
        _specs(FIRST_TOOLS, "replay"), workers=2, trace_dir=trace_dir
    )
    if replayed.failed:
        fail(f"replay sweep failed: {replayed.failed}")
    for key, fp in fingerprints(replayed).items():
        if fp != baseline[key]:
            fail(f"replayed fingerprint diverged from live for {key}")
    for o in replayed.outcomes:
        if o.trace_mode != "replay":
            fail(f"outcome {o.workload.name}/{o.config.name} not marked replay")

    store = TraceStore(trace_dir)
    if len(store) != LIMIT:
        fail(f"expected {LIMIT} recordings (one per cell), store has {len(store)}")

    # 3. second preset set over the SAME recordings: no new recordings
    second = run_sweep(
        _specs(SECOND_TOOLS, "replay"), workers=2, trace_dir=trace_dir
    )
    if second.failed:
        fail(f"second replay sweep failed: {second.failed}")
    for key, fp in fingerprints(second).items():
        if fp != baseline[key]:
            fail(f"second-preset fingerprint diverged from live for {key}")
    if len(store) != LIMIT:
        fail(f"second preset set grew the store to {len(store)} entries")

    # 4. cached replay re-run executes nothing
    cache = ResultCache(work / "cache")
    first = run_sweep(_specs(FIRST_TOOLS, "replay"), workers=0, cache=cache)
    again = run_sweep(_specs(FIRST_TOOLS, "replay"), workers=0, cache=cache)
    if again.summary().executed != 0 or again.summary().cached != len(first.records):
        fail("cached replay re-run re-executed instead of serving the cache")
    return len(baseline)


def main() -> None:
    with workdir(".replay-smoke") as work:
        cells = check(work)
    print(
        f"replay smoke OK: {cells} live cells matched across "
        f"{len(FIRST_TOOLS) + len(SECOND_TOOLS)} presets from {LIMIT} recordings"
    )


if __name__ == "__main__":
    main()
