#!/usr/bin/env python
"""Memory-budget smoke test for the resource-governed sweep runner.

1. Runs an unbudgeted serial baseline of a small PARSEC sweep and a
   budget-free 2-worker pass to measure the workers' natural peak RSS.
2. Reruns journaled under a memory budget sized so that the ballast
   knob (``REPRO_RSS_BALLAST_MB``) pushes every first attempt over the
   cap: each worker must be preempted and retried once in
   streaming/degraded mode, the sweep must complete with zero crashes
   and zero failed records, and every record must match the baseline on
   all stable fields (streaming is invisible in the verdicts).
3. Resumes the same journal and asserts every record is served from the
   checkpoint without re-execution.
4. Reruns with the ``!`` ballast form (over budget on degraded retries
   too) and asserts the runs land as structured ``poison`` records —
   skipped, never failed, never a crashed sweep.

Exits non-zero (with a message) on any violation.  Used by the CI
``oom-smoke`` job; safe to run locally from the repo root.
"""

from __future__ import annotations

import os
from pathlib import Path

from _smoke_common import fail, parsec_names, workdir

from repro.harness.parallel import run_sweep, sweep_specs  # noqa: E402
from repro.harness.resources import BALLAST_ENV, ResourceBudget  # noqa: E402

TOOLS = ["helgrind-lib-spin7"]
SEEDS = [1]
BALLAST_MB = 200
HEADROOM = 100 << 20  # budget sits this far above the natural peak

#: RunRecord fields that must be identical between the budgeted
#: (degraded/streaming) run and the unbudgeted baseline — everything
#: except wall-clock timings and the governance bookkeeping itself.
STABLE_FIELDS = (
    "workload", "tool", "seed", "steps", "events",
    "detector_words", "spin_loops", "adhoc_edges", "racy_contexts", "faults",
)

#: Governed sweeps need a short heartbeat (RSS samples) and an explicit
#: hung-after bound: replay/streaming workers never advance the step
#: counter, so the default hung detection would misread startup time.
GOVERNED = dict(heartbeat_s=0.02, hung_after_s=10, timeout_s=120)


def _specs():
    return sweep_specs(parsec_names(4), TOOLS, SEEDS)


def stable(rec):
    return tuple(getattr(rec, f) for f in STABLE_FIELDS)


def measure_natural_peak(work: Path):
    specs = _specs()
    print(f"baseline: {len(specs)} specs, serial, unbudgeted ...")
    baseline = run_sweep(specs, workers=0)
    if any(r.failed for r in baseline.records):
        fail("unbudgeted baseline had failures; smoke preconditions broken")

    print("measuring natural worker peak RSS (2 workers, no budget) ...")
    free = run_sweep(
        specs, workers=2, trace_dir=work / "traces-free", **GOVERNED
    )
    peak = max(r.peak_rss for r in free.records)
    if peak <= 0:
        fail("heartbeats reported no RSS; cannot size a budget")
    print(f"natural peak RSS: {peak >> 20} MiB")
    return baseline, peak


def budget_degrade_check(work: Path, baseline, natural_peak: int) -> None:
    specs = _specs()
    budget = ResourceBudget(max_rss_bytes=natural_peak + HEADROOM)
    journal_dir = work / "journal"
    os.environ[BALLAST_ENV] = str(BALLAST_MB)  # first attempts blow the cap
    try:
        print(
            f"budgeted sweep: cap {budget.max_rss_bytes >> 20} MiB, "
            f"ballast {BALLAST_MB} MiB, 2 workers, journaled ..."
        )
        governed = run_sweep(
            specs,
            workers=2,
            journal_dir=journal_dir,
            trace_dir=work / "traces",
            budget=budget,
            **GOVERNED,
        )
    finally:
        del os.environ[BALLAST_ENV]

    summary = governed.summary()
    if any(r.failed for r in governed.records):
        fail("budgeted sweep reported failed records; expected degraded retries")
    if summary.oom_preempted < len(specs):
        fail(
            f"expected every first attempt preempted "
            f"({len(specs)}), got {summary.oom_preempted}"
        )
    if summary.degraded < len(specs):
        fail(
            f"expected every run to complete degraded "
            f"({len(specs)}), got {summary.degraded}"
        )
    if summary.peak_rss <= budget.max_rss_bytes:
        fail("preempted sweep never saw an over-budget RSS sample")
    got = [stable(r) for r in governed.records]
    want = [stable(r) for r in baseline.records]
    if got != want:
        for g, w in zip(got, want):
            if g != w:
                fail(f"degraded record diverged from baseline: {g} != {w}")
        fail(f"record count mismatch: {len(got)} != {len(want)}")
    print(
        f"degrade OK: {summary.oom_preempted} preemptions, "
        f"{summary.degraded} streaming retries, 0 failures, "
        f"records identical to the unbudgeted baseline"
    )

    resumed = run_sweep(
        specs,
        workers=2,
        journal_dir=journal_dir,
        resume=True,
        trace_dir=work / "traces",
        budget=budget,
        **GOVERNED,
    )
    if resumed.resumed < len(specs):
        fail(
            f"resume re-executed work: {resumed.resumed}/{len(specs)} "
            "served from the journal"
        )
    if [stable(r) for r in resumed.records] != want:
        fail("resumed records diverged from the baseline")
    print(f"resume OK: {resumed.resumed}/{len(specs)} served from journal")


def poison_check(work: Path, natural_peak: int) -> None:
    specs = _specs()[:2]
    budget = ResourceBudget(max_rss_bytes=natural_peak + HEADROOM)
    os.environ[BALLAST_ENV] = f"{BALLAST_MB}!"  # degraded retries blow it too
    try:
        print("poison sweep: ballast persists through degraded retries ...")
        governed = run_sweep(
            specs,
            workers=2,
            trace_dir=work / "traces-poison",
            budget=budget,
            **GOVERNED,
        )
    finally:
        del os.environ[BALLAST_ENV]

    statuses = [r.status for r in governed.records]
    if statuses != ["poison"] * len(specs):
        fail(f"expected poison records, got {statuses}")
    if any(r.failed for r in governed.records):
        fail("poison records must count as skipped, not failed")
    if not all("oom-preempted" in r.error for r in governed.records):
        fail("poison records carry no structured preemption error")
    print(
        f"poison OK: {len(specs)} unsalvageable runs quarantined "
        f"as structured skips, sweep completed"
    )


def main() -> None:
    with workdir(".repro-oom-smoke") as work:
        baseline, natural_peak = measure_natural_peak(work)
        budget_degrade_check(work, baseline, natural_peak)
        poison_check(work, natural_peak)
    print("oom smoke: all checks passed")


if __name__ == "__main__":
    main()
