"""Shared plumbing for the ``scripts/*_smoke.py`` CI checks.

Every smoke test repeats the same skeleton: make ``import repro`` work
from a source checkout, build a scratch directory under the repo root
that is removed even on failure, print a ``FAIL:`` line and exit
non-zero on the first violation, and — for the kill-and-resume family —
launch itself as a ``--child`` subprocess in its own session, poll the
journal until enough records landed, then SIGKILL the whole process
group.  This module is that skeleton, written once.

Import it first; importing has the side effect of putting ``src/`` on
``sys.path`` so the subsequent ``repro`` imports resolve::

    from _smoke_common import REPO, fail, workdir, spawn_child, sigkill_when
"""

from __future__ import annotations

import contextlib
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Union

#: the repository root (the parent of ``scripts/``)
REPO = Path(__file__).resolve().parent.parent


def bootstrap() -> None:
    """Put ``src/`` on ``sys.path`` so ``import repro`` works uninstalled."""
    path = str(REPO / "src")
    if path not in sys.path:
        sys.path.insert(0, path)


bootstrap()


def fail(msg: str) -> None:
    """Print a ``FAIL:`` line and exit non-zero — the smoke-test verdict."""
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parsec_names(limit: Optional[int] = None) -> List[str]:
    """The PARSEC workload names every smoke subset draws from."""
    from repro.workloads import parsec_workloads

    names = [wl.name for wl in parsec_workloads()]
    return names[:limit] if limit is not None else names


def journal_entries(journal_dir: Path) -> int:
    """Completed records in a sweep journal (header line excluded)."""
    files = list(Path(journal_dir).glob("sweep-*.jsonl"))
    if not files:
        return 0
    return max(len(files[0].read_text().splitlines()) - 1, 0)


@contextlib.contextmanager
def workdir(name: str) -> Iterator[Path]:
    """A fresh scratch directory under the repo root, removed on exit."""
    work = REPO / name
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)
    try:
        yield work
    finally:
        shutil.rmtree(work, ignore_errors=True)


def spawn_child(script: Union[str, Path], *argv: str, **popen_kwargs) -> subprocess.Popen:
    """Relaunch ``script`` as ``--child`` in its own session.

    ``start_new_session=True`` puts the child and every worker it forks
    in one process group, so a later :func:`sigkill_group` takes the
    workers down with it — a SIGKILL that leaves orphans behind tests
    nothing.
    """
    return subprocess.Popen(
        [sys.executable, str(script), "--child", *argv],
        cwd=REPO,
        start_new_session=True,
        **popen_kwargs,
    )


def sigkill_group(proc: subprocess.Popen) -> None:
    """SIGKILL the child's whole process group and reap it."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()


def sigkill_when(
    proc: subprocess.Popen,
    progressed: Callable[[], int],
    *,
    min_count: int = 1,
    timeout_s: float = 120.0,
    what: str = "child",
) -> int:
    """Poll ``progressed()`` until it reaches ``min_count``, then SIGKILL.

    Fails the smoke test if the child exits first (nothing left to
    kill) or makes no progress within ``timeout_s``.  Returns the final
    ``progressed()`` value observed after the kill landed.
    """
    deadline = time.monotonic() + timeout_s
    try:
        while True:
            done = progressed()
            if done >= min_count:
                break
            if proc.poll() is not None:
                fail(f"{what} finished before it could be killed")
            if time.monotonic() > deadline:
                fail(f"{what} made no progress in {timeout_s:.0f}s")
            time.sleep(0.01)
        os.killpg(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()
    return progressed()
