#!/usr/bin/env python
"""Crash-safety smoke test for the analysis service daemon.

1. Starts the daemon (``repro.harness.cli serve``), waits for the ready
   line, and drives concurrent clients across two tenants: every
   verdict must come back ``ok`` and the fingerprint must be identical
   to a direct in-process ``repro.run`` of the same cell.  Resubmitting
   the same requests must be served from the verdict index with the
   ``executed`` counter unchanged (zero recomputation).
2. Fires a fresh batch of concurrent requests and SIGKILLs the whole
   daemon process group once all are journaled ``accepted`` but not all
   ``done`` — the crash window the journal exists for.
3. Restarts the daemon on the same state directory and asserts the
   journal drain: every accepted-but-unfinished request is re-run to a
   ``done`` verdict without client involvement, completed verdicts are
   served from the index with zero recomputation, and a pre-kill
   verdict resubmitted after the restart is fingerprint-identical.
4. Starts a deliberately tiny daemon (1 worker, queue depth 2) and
   floods it: at least one client must get an explicit HTTP 429
   ``backpressure`` response with ``retry_after_s`` — never a hang —
   while the admitted requests still complete ``ok``.

Exits non-zero (with a message) on any violation.  Used by the CI
``service-smoke`` job; safe to run locally from the repo root.
"""

from __future__ import annotations

import http.client
import json
import os
import select
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from _smoke_common import REPO, fail, sigkill_group, workdir

WORKLOAD = "locks_mutex_counter_t2"
TOOL = "helgrind-lib-spin7"
MAX_STEPS = 60_000
TENANTS = ("team-a", "team-b")


def request(seed: int, tenant: str) -> dict:
    return {
        "v": 1,
        "tenant": tenant,
        "kind": "workload",
        "workload": WORKLOAD,
        "tool": TOOL,
        "seed": seed,
        "max_steps": MAX_STEPS,
    }


def start_daemon(
    state: Path, *, workers: int, queue_depth: int, timeout_s: float = 90.0
):
    """Launch ``serve`` and block on its JSON ready line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.cli", "serve",
            "--work-dir", str(state),
            "--port", "0",
            "--workers", str(workers),
            "--queue-depth", str(queue_depth),
            "--tenant-rate", "1000000",
            "--tenant-burst", "1000000",
        ],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        start_new_session=True,  # so SIGKILL takes the workers down too
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"daemon exited (rc={proc.returncode}) before the ready line")
        readable, _, _ = select.select([proc.stdout], [], [], 0.2)
        if not readable:
            continue
        line = proc.stdout.readline()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if obj.get("ready"):
            return proc, int(obj["port"])
    fail(f"daemon printed no ready line in {timeout_s:.0f}s")


def post(port: int, req: dict, timeout: float = 180.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            "POST", "/v1/analyze", json.dumps(req).encode(),
            {"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read().decode("utf-8"))
    finally:
        conn.close()


def get_stats(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/v1/stats")
        return json.loads(conn.getresponse().read().decode("utf-8"))
    finally:
        conn.close()


def post_threads(port: int, reqs):
    """Start one posting thread per request; returns (threads, results)."""
    results = [None] * len(reqs)

    def worker(idx: int, req: dict) -> None:
        try:
            results[idx] = post(port, req)
        except (OSError, ValueError) as exc:  # daemon killed mid-request
            results[idx] = ("transport", str(exc))

    threads = [
        threading.Thread(target=worker, args=(i, r)) for i, r in enumerate(reqs)
    ]
    for t in threads:
        t.start()
    return threads, results


def post_concurrent(port: int, reqs):
    threads, results = post_threads(port, reqs)
    for t in threads:
        t.join()
    return results


def journal_ops(state: Path):
    """(accepted keys, done keys) from the daemon's request journal."""
    path = state / "journal" / "requests.jsonl"
    accepted, done = set(), set()
    if path.exists():
        for line in path.read_text().splitlines()[1:]:
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # torn tail: the daemon truncates it on load
            if obj.get("op") == "accepted":
                accepted.add(obj["key"])
            elif obj.get("op") == "done":
                done.add(obj["key"])
    return accepted, done


def direct_fingerprint(seed: int) -> str:
    import repro

    return repro.run(WORKLOAD, TOOL, seed=seed, max_steps=MAX_STEPS).fingerprint


def graceful_stop(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    if rc != 0:
        fail(f"daemon did not exit cleanly on SIGTERM (rc={rc})")


def warm_and_identity_check(state: Path, port: int) -> dict:
    seeds = list(range(1, 7))
    reqs = [request(s, TENANTS[i % 2]) for i, s in enumerate(seeds)]
    print(f"submitting {len(reqs)} concurrent requests across {len(TENANTS)} tenants ...")
    results = post_concurrent(port, reqs)
    fingerprints = {}
    for (code, body), seed in zip(results, seeds):
        if code != 200 or body.get("status") != "ok":
            fail(f"warm request seed={seed} failed: {code} {body}")
        fingerprints[seed] = body["verdict"]["fingerprint"]
    if fingerprints[seeds[0]] != direct_fingerprint(seeds[0]):
        fail("served fingerprint diverged from a direct repro.run")
    stats = get_stats(port)
    if stats["executed"] != len(reqs):
        fail(f"expected {len(reqs)} executions, stats say {stats['executed']}")

    for seed, req in zip(seeds, reqs):
        code, body = post(port, req)
        if code != 200 or not body.get("cached"):
            fail(f"resubmitted seed={seed} was not served cached: {code} {body}")
        if body["verdict"]["fingerprint"] != fingerprints[seed]:
            fail(f"cached verdict for seed={seed} diverged")
    stats = get_stats(port)
    if stats["executed"] != len(reqs):
        fail("resubmission recomputed instead of serving the verdict index")
    print(
        f"warm OK: {len(reqs)} verdicts, fingerprints identical to direct "
        f"runs, resubmission served with zero recomputation"
    )
    return fingerprints


def kill_mid_flight(state: Path, proc, port: int) -> set:
    seeds = [301, 302, 303, 304]
    reqs = [request(s, TENANTS[i % 2]) for i, s in enumerate(seeds)]
    accepted_before, done_before = journal_ops(state)
    print(f"submitting {len(reqs)} requests and SIGKILLing mid-flight ...")
    threads, _results = post_threads(port, reqs)
    deadline = time.monotonic() + 60
    try:
        while True:
            accepted, done = journal_ops(state)
            new_accepted = accepted - accepted_before
            if len(new_accepted) >= len(reqs):
                break
            if time.monotonic() > deadline:
                fail("requests were not journaled as accepted in 60s")
            time.sleep(0.001)
    finally:
        sigkill_group(proc)
    for t in threads:
        t.join()
    accepted, done = journal_ops(state)
    pending = accepted - done
    if not pending:
        fail("every request completed before the kill landed; no crash window")
    print(f"killed with {len(pending)}/{len(reqs)} accepted requests unfinished")
    return pending


def restart_drain_check(state: Path, pending: set, fingerprints: dict) -> None:
    proc, port = start_daemon(state, workers=2, queue_depth=16)
    try:
        deadline = time.monotonic() + 120
        while True:
            stats = get_stats(port)
            if stats["inflight"] == 0 and stats["queued"] == 0 and stats["running"] == 0:
                break
            if time.monotonic() > deadline:
                fail("restart drain did not finish in 120s")
            time.sleep(0.05)
        if stats["drained"] != len(pending):
            fail(
                f"expected {len(pending)} drained request(s), "
                f"stats say {stats['drained']}"
            )
        if stats["executed"] != len(pending):
            fail("restart executed more than the journaled in-flight tail")
        accepted, done = journal_ops(state)
        if accepted - done:
            fail(f"journal still holds unfinished keys after drain: {accepted - done}")

        # Resubmissions of killed requests: verdicts now exist, served
        # from the index without recomputation.
        for i, seed in enumerate([301, 302, 303, 304]):
            code, body = post(port, request(seed, TENANTS[i % 2]))
            if code != 200 or body.get("status") != "ok" or not body.get("cached"):
                fail(f"drained seed={seed} not served from the index: {code} {body}")
        # And a pre-kill verdict survives the restart bit-identically.
        code, body = post(port, request(1, TENANTS[0]))
        if code != 200 or not body.get("cached"):
            fail(f"pre-kill verdict not cached across restart: {code} {body}")
        if body["verdict"]["fingerprint"] != fingerprints[1]:
            fail("pre-kill verdict fingerprint changed across restart")
        if get_stats(port)["executed"] != len(pending):
            fail("post-drain resubmissions recomputed instead of index hits")
        print(
            f"restart OK: {len(pending)} journaled request(s) drained to "
            f"verdicts, cached verdicts identical across the kill, zero "
            f"recomputation for completed keys"
        )
    finally:
        graceful_stop(proc)


def backpressure_check(work: Path) -> None:
    state = work / "state-bp"
    proc, port = start_daemon(state, workers=1, queue_depth=2)
    try:
        seeds = list(range(401, 409))
        reqs = [request(s, TENANTS[i % 2]) for i, s in enumerate(seeds)]
        print(f"flooding 1-worker/depth-2 daemon with {len(reqs)} concurrent requests ...")
        results = post_concurrent(port, reqs)
        refused = [r for r in results if r[0] == 429]
        served = [r for r in results if r[0] == 200 and r[1].get("status") == "ok"]
        if not refused:
            fail("full admission queue never produced an HTTP 429")
        for code, body in refused:
            if body.get("status") != "backpressure" or "retry_after_s" not in body:
                fail(f"429 response malformed: {body}")
        if len(served) + len(refused) != len(reqs):
            fail(f"unexpected responses under flood: {results}")
        print(
            f"backpressure OK: {len(refused)} explicit 429(s) with "
            f"retry_after_s, {len(served)} admitted requests served"
        )
    finally:
        graceful_stop(proc)


def main() -> None:
    with workdir(".repro-service-smoke") as work:
        state = work / "state"
        proc, port = start_daemon(state, workers=2, queue_depth=16)
        killed = False
        try:
            fingerprints = warm_and_identity_check(state, port)
            pending = kill_mid_flight(state, proc, port)
            killed = True
        finally:
            if not killed:
                sigkill_group(proc)
        restart_drain_check(state, pending, fingerprints)
        backpressure_check(work)
    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
