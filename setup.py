"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package, so PEP-517 editable
installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
